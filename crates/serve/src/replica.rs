//! The replica abstraction the micro-batcher serves through.
//!
//! The deadline batcher machinery in `server.rs` is generic over *what*
//! it serves: anything that can answer a batch of observations and stamp
//! its responses with provenance. Two replica kinds implement it — the
//! float-capable [`PolicySnapshot`] (the training-side replica) and the
//! integer-only `ArtifactReplica` (the deployment-side replica in
//! `artifact.rs`). The traits are crate-internal; the public surface
//! stays the concrete `ActionServer` / `ArtifactServer` pairs.

use std::sync::Arc;

use fixar_fixed::Scalar;
use fixar_pool::Parallelism;
use fixar_rl::PolicySnapshot;
use fixar_tensor::Matrix;

use crate::server::ActionResponse;
use crate::{ServeError, SnapshotStore};

/// One immutable replica a micro-batch is served from.
pub(crate) trait ServedReplica: Send + Sync + 'static {
    /// Response type rows of a served batch are wrapped into.
    type Response: Send + 'static;

    /// Answers a whole micro-batch (one observation per row).
    fn serve_batch(&self, obs: &Matrix<f64>, par: &Parallelism) -> Result<Matrix<f64>, ServeError>;

    /// Wraps one served row in the replica's provenance-stamped response.
    fn respond(&self, action: Vec<f64>, batch_rows: usize) -> Self::Response;
}

/// Publication slot the batcher loads its replica from, once per batch.
pub(crate) trait ReplicaStore: Send + Sync + 'static {
    /// Replica kind the store publishes.
    type Replica: ServedReplica;

    /// The replica to serve the *next* batch from.
    fn load_replica(&self) -> Arc<Self::Replica>;
}

impl<S: Scalar> ServedReplica for PolicySnapshot<S> {
    type Response = ActionResponse;

    fn serve_batch(&self, obs: &Matrix<f64>, par: &Parallelism) -> Result<Matrix<f64>, ServeError> {
        self.select_actions_batch(obs, par)
            .map_err(ServeError::from)
    }

    fn respond(&self, action: Vec<f64>, batch_rows: usize) -> ActionResponse {
        ActionResponse {
            action,
            snapshot_id: self.id(),
            batch_rows,
        }
    }
}

impl<S: Scalar> ReplicaStore for SnapshotStore<S> {
    type Replica = PolicySnapshot<S>;

    fn load_replica(&self) -> Arc<PolicySnapshot<S>> {
        self.load()
    }
}
