//! Request-driven serving front door for FIXAR policies.
//!
//! Everything upstream of this crate is trainer-driven lockstep; this is
//! the opposite direction: many concurrent clients submit observations
//! and a **deadline micro-batcher** coalesces them into
//! `select_actions_batch` calls on immutable
//! [`PolicySnapshot`](fixar_rl::PolicySnapshot) replicas.
//!
//! * [`ActionServer`] — owns N shards, each a hand-rolled MPMC request
//!   queue drained by a dedicated batcher thread. A batch flushes when
//!   it reaches [`ServeConfig::max_batch`] **or** the oldest request has
//!   waited [`ServeConfig::max_delay`], whichever comes first.
//! * [`ServeClient`] — cheap clonable handle: [`ServeClient::submit`]
//!   enqueues an observation and returns a [`PendingAction`] one-shot;
//!   [`ServeClient::request`] is the blocking convenience wrapper.
//! * [`SnapshotPublisher`] — the trainer-side handle:
//!   [`SnapshotPublisher::publish`] atomically swaps in a new snapshot
//!   (monotonically increasing id enforced) without ever blocking the
//!   request path.
//!
//! # The snapshot-id contract
//!
//! Every [`ActionResponse`] carries the id of the snapshot that produced
//! it, and one micro-batch is served from exactly one snapshot. Because
//! the underlying kernels are bit-exact under batching and pool
//! parallelism, a served trajectory is **bit-equal to an offline
//! replay**: feed each recorded observation to
//! `PolicySnapshot::select_action` on the snapshot with the recorded id
//! and the actions match exactly — regardless of which requests shared a
//! batch, the deadline knobs, the shard count, or `FIXAR_WORKERS`.
//! `tests/serve_props.rs` in the workspace proves this end to end,
//! including across mid-run snapshot swaps and QAT-frozen actors.
//!
//! # Serving deployment artifacts
//!
//! The same micro-batcher also serves **integer-only deployment
//! artifacts** ([`fixar_deploy::PolicyArtifact`]): [`ArtifactServer`] /
//! [`ArtifactClient`] / [`ArtifactPublisher`] mirror the snapshot trio
//! exactly, but every action is produced by the no-float interpreter and
//! every [`ArtifactResponse`] is stamped with the artifact's **content
//! hash** in addition to its publication id — auditing a served
//! trajectory needs nothing but the frozen blob.
//!
//! # Example
//!
//! ```
//! use fixar_rl::{Ddpg, DdpgConfig};
//! use fixar_serve::{ActionServer, ServeConfig};
//! use std::time::Duration;
//!
//! let agent = Ddpg::<f32>::new(3, 1, DdpgConfig::small_test())?;
//! let server = ActionServer::start(
//!     agent.policy_snapshot(0),
//!     ServeConfig {
//!         max_batch: 8,
//!         max_delay: Duration::from_micros(100),
//!         shards: 2,
//!         workers: 1,
//!     },
//! )?;
//! let client = server.client();
//! let resp = client.request(&[0.1, -0.4, 0.25])?;
//! assert_eq!(resp.snapshot_id, 0);
//! assert_eq!(resp.action.len(), 1);
//!
//! // Trainer publishes a fresher snapshot; later responses carry id 1.
//! server.publisher().publish(agent.policy_snapshot(1))?;
//! assert_eq!(client.request(&[0.1, -0.4, 0.25])?.snapshot_id, 1);
//! # Ok::<(), fixar_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod replica;
mod server;
mod store;

pub use artifact::{
    ArtifactClient, ArtifactPublisher, ArtifactReplica, ArtifactResponse, ArtifactServer,
    ArtifactStore, PendingArtifactAction,
};
pub use server::{
    ActionResponse, ActionServer, PendingAction, PendingReply, ServeClient, ServeConfig,
    ServeStats, ShardStats, SnapshotPublisher,
};
pub use store::SnapshotStore;

use std::error::Error;
use std::fmt;

/// Error surface of the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server configuration is unusable (zero shards, zero batch).
    InvalidConfig(String),
    /// An observation's dimension does not match the served policy.
    WrongDimension {
        /// Dimension the policy expects.
        expected: usize,
        /// Dimension the request carried.
        got: usize,
    },
    /// A publish offered a snapshot whose id does not advance the
    /// current one — publication ids must increase strictly
    /// monotonically.
    StaleSnapshot {
        /// Id currently being served.
        current: u64,
        /// Id that was offered.
        offered: u64,
    },
    /// The server has shut down; the request was not (or will not be)
    /// served.
    Shutdown,
    /// Inference on the batcher thread failed (stringified `RlError`).
    Inference(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::WrongDimension { expected, got } => {
                write!(
                    f,
                    "observation has dimension {got}, policy expects {expected}"
                )
            }
            ServeError::StaleSnapshot { current, offered } => write!(
                f,
                "snapshot id {offered} does not advance the served id {current}"
            ),
            ServeError::Shutdown => write!(f, "server has shut down"),
            ServeError::Inference(msg) => write!(f, "batched inference failed: {msg}"),
        }
    }
}

impl Error for ServeError {}

impl From<fixar_rl::RlError> for ServeError {
    fn from(e: fixar_rl::RlError) -> Self {
        ServeError::Inference(e.to_string())
    }
}
