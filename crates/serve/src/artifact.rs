//! Serving integer-only deployment artifacts.
//!
//! [`ArtifactServer`] is the deployment-side twin of
//! [`ActionServer`](crate::ActionServer): the same sharded deadline
//! micro-batcher, but every batch is answered by the `fixar-deploy`
//! integer interpreter instead of the float-capable
//! `PolicySnapshot` path. Responses are stamped with the replica's
//! publication id **and** the artifact's content hash, so a served
//! trajectory can be audited against the exact frozen blob that
//! produced it: decode the blob, check
//! [`PolicyArtifact::content_hash`], replay each observation through
//! [`PolicyArtifact::infer`], and the actions match bit-for-bit.

use std::sync::{Arc, Mutex};

use fixar_deploy::PolicyArtifact;
use fixar_pool::Parallelism;
use fixar_tensor::Matrix;

use crate::replica::{ReplicaStore, ServedReplica};
use crate::server::{submit_obs, PendingReply, ServeConfig, ServeStats, ServerCore, Shared};
use crate::ServeError;

/// One served action from an integer-only artifact, stamped with its
/// provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactResponse {
    /// The artifact's action for the submitted observation.
    pub action: Vec<f64>,
    /// Publication id of the [`ArtifactReplica`] that produced it.
    pub artifact_id: u64,
    /// Content hash ([`PolicyArtifact::content_hash`]) of the serialized
    /// artifact — replaying the observation against any blob with this
    /// hash reproduces `action` bit-for-bit.
    pub content_hash: u64,
    /// Number of requests that shared the micro-batch (diagnostics; has
    /// no effect on the action by the bit-exactness contract).
    pub batch_rows: usize,
}

/// An immutable, id-stamped [`PolicyArtifact`] ready for serving.
///
/// The content hash is computed once at construction, so stamping every
/// response costs nothing on the request path.
#[derive(Debug, Clone)]
pub struct ArtifactReplica {
    artifact: PolicyArtifact,
    id: u64,
    content_hash: u64,
}

impl ArtifactReplica {
    /// Wraps `artifact` under publication id `id`, caching its content
    /// hash.
    pub fn new(artifact: PolicyArtifact, id: u64) -> Self {
        let content_hash = artifact.content_hash();
        Self {
            artifact,
            id,
            content_hash,
        }
    }

    /// Publication id of this replica.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Cached [`PolicyArtifact::content_hash`] of the wrapped artifact.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// The wrapped artifact.
    pub fn artifact(&self) -> &PolicyArtifact {
        &self.artifact
    }
}

impl ServedReplica for ArtifactReplica {
    type Response = ArtifactResponse;

    // Rows are served sequentially: the integer interpreter is bit-exact
    // per sample, so worker parallelism cannot change any answer and is
    // not worth spinning up for the artifact's small single-sample nets.
    fn serve_batch(
        &self,
        obs: &Matrix<f64>,
        _par: &Parallelism,
    ) -> Result<Matrix<f64>, ServeError> {
        let mut actions = Matrix::zeros(obs.rows(), self.artifact.output_dim());
        for i in 0..obs.rows() {
            let action = self
                .artifact
                .infer(obs.row(i))
                .map_err(|e| ServeError::Inference(e.to_string()))?;
            actions.row_mut(i).copy_from_slice(&action);
        }
        Ok(actions)
    }

    fn respond(&self, action: Vec<f64>, batch_rows: usize) -> ArtifactResponse {
        ArtifactResponse {
            action,
            artifact_id: self.id,
            content_hash: self.content_hash,
            batch_rows,
        }
    }
}

/// Single-slot publication point for [`ArtifactReplica`]s — the
/// deployment-side twin of [`SnapshotStore`](crate::SnapshotStore),
/// with the same strictly-monotone publication contract.
pub struct ArtifactStore {
    slot: Mutex<Arc<ArtifactReplica>>,
}

impl ArtifactStore {
    /// A store serving `initial` until something newer is published.
    pub fn new(initial: ArtifactReplica) -> Self {
        Self {
            slot: Mutex::new(Arc::new(initial)),
        }
    }

    /// The replica the *next* batch should be served from.
    pub fn load(&self) -> Arc<ArtifactReplica> {
        Arc::clone(&self.slot.lock().expect("artifact store poisoned"))
    }

    /// Id of the replica currently being served.
    pub fn current_id(&self) -> u64 {
        self.slot.lock().expect("artifact store poisoned").id()
    }

    /// Atomically swaps in `replica`, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::StaleSnapshot`] unless the id strictly
    /// increases.
    pub fn publish(&self, replica: ArtifactReplica) -> Result<u64, ServeError> {
        let mut slot = self.slot.lock().expect("artifact store poisoned");
        let current = slot.id();
        if replica.id() <= current {
            return Err(ServeError::StaleSnapshot {
                current,
                offered: replica.id(),
            });
        }
        let id = replica.id();
        *slot = Arc::new(replica);
        Ok(id)
    }
}

impl ReplicaStore for ArtifactStore {
    type Replica = ArtifactReplica;

    fn load_replica(&self) -> Arc<ArtifactReplica> {
        self.load()
    }
}

/// The deployment-side serving front door: identical queueing, batching,
/// and publication semantics to [`ActionServer`](crate::ActionServer),
/// but every action is produced by the `fixar-deploy` integer-only
/// interpreter and every response carries the artifact's content hash.
pub struct ArtifactServer {
    core: ServerCore<ArtifactStore>,
}

impl ArtifactServer {
    /// Starts the server: spawns one batcher thread per shard, serving
    /// `initial` until a newer replica is published.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] if `max_batch` or `shards`
    /// is zero.
    pub fn start(initial: ArtifactReplica, cfg: ServeConfig) -> Result<Self, ServeError> {
        let (state_dim, action_dim) = (
            initial.artifact().input_dim(),
            initial.artifact().output_dim(),
        );
        let core = ServerCore::start(ArtifactStore::new(initial), state_dim, action_dim, cfg)?;
        Ok(Self { core })
    }

    /// A clonable client handle for submitting observations.
    pub fn client(&self) -> ArtifactClient {
        ArtifactClient {
            shared: Arc::clone(&self.core.shared),
        }
    }

    /// The handle for publishing fresher artifact replicas.
    pub fn publisher(&self) -> ArtifactPublisher {
        ArtifactPublisher {
            shared: Arc::clone(&self.core.shared),
        }
    }

    /// Publication id of the replica the *next* batch will be served
    /// from.
    pub fn current_artifact_id(&self) -> u64 {
        self.core.shared.store.current_id()
    }

    /// Content hash of the replica the *next* batch will be served from.
    pub fn current_content_hash(&self) -> u64 {
        self.core.shared.store.load().content_hash()
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> ServeStats {
        self.core.stats()
    }

    /// Shuts down gracefully: rejects new submissions, serves every
    /// already-queued request, joins the batcher threads, and returns
    /// the final counters.
    pub fn shutdown(self) -> ServeStats {
        let mut core = self.core;
        core.close_and_join();
        core.stats()
    }
}

/// A pending artifact-served response (see [`PendingReply`]).
pub type PendingArtifactAction = PendingReply<ArtifactResponse>;

/// Client handle for an [`ArtifactServer`]; cloning is an `Arc` bump.
pub struct ArtifactClient {
    shared: Arc<Shared<ArtifactStore>>,
}

impl Clone for ArtifactClient {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl ArtifactClient {
    /// Observation dimension the served artifact expects.
    pub fn state_dim(&self) -> usize {
        self.shared.state_dim
    }

    /// Action dimension the served artifact produces.
    pub fn action_dim(&self) -> usize {
        self.shared.action_dim
    }

    /// Enqueues an observation (round-robin across shards) and returns
    /// immediately with a [`PendingArtifactAction`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WrongDimension`] for a mis-sized
    /// observation, [`ServeError::Shutdown`] if the server has shut
    /// down.
    pub fn submit(&self, obs: &[f64]) -> Result<PendingArtifactAction, ServeError> {
        submit_obs(&self.shared, obs)
    }

    /// Blocking convenience wrapper: [`ArtifactClient::submit`] +
    /// [`PendingReply::wait`].
    ///
    /// # Errors
    ///
    /// As [`ArtifactClient::submit`], plus anything the batcher reports.
    pub fn request(&self, obs: &[f64]) -> Result<ArtifactResponse, ServeError> {
        self.submit(obs)?.wait()
    }
}

/// Handle for publishing fresher artifact replicas without blocking the
/// request path.
pub struct ArtifactPublisher {
    shared: Arc<Shared<ArtifactStore>>,
}

impl Clone for ArtifactPublisher {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl ArtifactPublisher {
    /// Atomically swaps in `replica`, returning its id. Batches already
    /// in flight finish on the replica they loaded; every later batch
    /// serves — and is stamped with — the new id and content hash.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WrongDimension`] if the replica's
    /// dimensions differ from the served artifact's, and
    /// [`ServeError::StaleSnapshot`] unless its id strictly increases.
    pub fn publish(&self, replica: ArtifactReplica) -> Result<u64, ServeError> {
        if replica.artifact().input_dim() != self.shared.state_dim {
            return Err(ServeError::WrongDimension {
                expected: self.shared.state_dim,
                got: replica.artifact().input_dim(),
            });
        }
        if replica.artifact().output_dim() != self.shared.action_dim {
            return Err(ServeError::WrongDimension {
                expected: self.shared.action_dim,
                got: replica.artifact().output_dim(),
            });
        }
        self.shared.store.publish(replica)
    }

    /// Id currently being served (the floor for the next publish).
    pub fn current_id(&self) -> u64 {
        self.shared.store.current_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;
    use fixar_rl::{Ddpg, DdpgConfig, PolicySnapshot};

    fn snapshot(id: u64) -> PolicySnapshot<Fx32> {
        Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test())
            .unwrap()
            .policy_snapshot(id)
    }

    fn replica(id: u64) -> ArtifactReplica {
        ArtifactReplica::new(snapshot(0).export_artifact().unwrap(), id)
    }

    fn obs(i: usize) -> Vec<f64> {
        (0..3).map(|c| ((i * 3 + c) as f64).sin() * 0.8).collect()
    }

    #[test]
    fn serves_artifact_actions_stamped_with_content_hash() {
        let snap = snapshot(0);
        let art = snap.export_artifact().unwrap();
        let hash = art.content_hash();
        let server =
            ArtifactServer::start(ArtifactReplica::new(art, 7), ServeConfig::default()).unwrap();
        assert_eq!(server.current_artifact_id(), 7);
        assert_eq!(server.current_content_hash(), hash);
        let client = server.client();
        assert_eq!(client.state_dim(), 3);
        assert_eq!(client.action_dim(), 1);
        let offline = snap.export_artifact().unwrap();
        for i in 0..24 {
            let resp = client.request(&obs(i)).unwrap();
            assert_eq!(resp.artifact_id, 7);
            assert_eq!(resp.content_hash, hash);
            assert!(resp.batch_rows >= 1);
            assert_eq!(resp.action, offline.infer(&obs(i)).unwrap());
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests(), 24);
    }

    #[test]
    fn publish_swaps_replicas_and_rejects_stale_or_mismatched_ones() {
        let server = ArtifactServer::start(replica(1), ServeConfig::default()).unwrap();
        let publisher = server.publisher();
        assert_eq!(publisher.current_id(), 1);
        assert_eq!(publisher.publish(replica(2)).unwrap(), 2);
        assert!(matches!(
            publisher.publish(replica(2)),
            Err(ServeError::StaleSnapshot {
                current: 2,
                offered: 2
            })
        ));
        let wrong_shape = ArtifactReplica::new(
            Ddpg::<Fx32>::new(5, 2, DdpgConfig::small_test())
                .unwrap()
                .policy_snapshot(0)
                .export_artifact()
                .unwrap(),
            9,
        );
        assert!(matches!(
            publisher.publish(wrong_shape),
            Err(ServeError::WrongDimension {
                expected: 3,
                got: 5
            })
        ));
        let resp = server.client().request(&obs(0)).unwrap();
        assert_eq!(resp.artifact_id, 2);
    }

    #[test]
    fn rejects_bad_dimensions_and_drains_on_shutdown() {
        let server = ArtifactServer::start(replica(0), ServeConfig::default()).unwrap();
        let client = server.client();
        assert!(matches!(
            client.request(&[0.5]),
            Err(ServeError::WrongDimension {
                expected: 3,
                got: 1
            })
        ));
        let pending: Vec<_> = (0..8).map(|i| client.submit(&obs(i)).unwrap()).collect();
        drop(server);
        for p in pending {
            p.wait().unwrap();
        }
        assert!(matches!(client.submit(&obs(0)), Err(ServeError::Shutdown)));
    }
}
