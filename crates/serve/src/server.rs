//! The sharded deadline micro-batcher.
//!
//! The batching machinery (`Shared`, `ServerCore`, `batcher_loop`) is
//! generic over a [`ReplicaStore`](crate::replica::ReplicaStore): the
//! same queues, deadline logic, and counters serve float-side
//! [`PolicySnapshot`] replicas (this module's public [`ActionServer`])
//! and integer-only deployment artifacts (`artifact.rs`'s
//! `ArtifactServer`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use fixar_fixed::Scalar;
use fixar_pool::{oneshot, MpmcQueue, OneShotReceiver, OneShotSender, Parallelism};
use fixar_rl::PolicySnapshot;
use fixar_tensor::Matrix;

use crate::replica::{ReplicaStore, ServedReplica};
use crate::{ServeError, SnapshotStore};

/// Knobs of the serving front door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush a micro-batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// …or as soon as the oldest request in it has waited this long,
    /// whichever comes first. `Duration::ZERO` serves each batcher wakeup
    /// with whatever is already queued (lowest latency, smallest
    /// batches).
    pub max_delay: Duration,
    /// Independent shards: each has its own request queue and batcher
    /// thread, and requests are routed round-robin. More shards = more
    /// concurrent `select_actions_batch` calls.
    pub shards: usize,
    /// Kernel workers per batched inference (the pool the batch rows
    /// shard over). The `FIXAR_WORKERS` environment variable overrides
    /// this, exactly as it does for training configs.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_micros(200),
            shards: 1,
            workers: 1,
        }
    }
}

/// One served action, stamped with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionResponse {
    /// The policy's action for the submitted observation.
    pub action: Vec<f64>,
    /// Id of the [`PolicySnapshot`] that produced it — replaying the
    /// observation against this snapshot reproduces `action` bit-for-
    /// bit.
    pub snapshot_id: u64,
    /// Number of requests that shared the micro-batch (diagnostics; has
    /// no effect on the action by the bit-exactness contract).
    pub batch_rows: usize,
}

/// Response type a store's replicas produce.
pub(crate) type RespOf<St> = <<St as ReplicaStore>::Replica as ServedReplica>::Response;

pub(crate) struct Request<R> {
    obs: Vec<f64>,
    reply: OneShotSender<Result<R, ServeError>>,
}

/// Per-shard counters, updated with relaxed atomics (monotonic event
/// counts only — no ordering is derived from them).
#[derive(Default)]
struct ShardCounters {
    requests: AtomicU64,
    batches: AtomicU64,
    full_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    served_rows: AtomicU64,
    max_batch_rows: AtomicU64,
    dropped_replies: AtomicU64,
}

/// Point-in-time counters of one shard (see [`ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests routed to this shard.
    pub requests: u64,
    /// Micro-batches served.
    pub batches: u64,
    /// Batches flushed because they reached `max_batch`.
    pub full_flushes: u64,
    /// Batches flushed because the oldest request hit `max_delay` (or
    /// the queue closed).
    pub deadline_flushes: u64,
    /// Total rows served (= responses produced).
    pub served_rows: u64,
    /// Largest micro-batch served.
    pub max_batch_rows: u64,
    /// Responses whose client had already dropped its pending handle.
    pub dropped_replies: u64,
}

/// Aggregated serving counters, from [`ActionServer::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl ServeStats {
    /// Requests across all shards.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Micro-batches across all shards.
    pub fn batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Mean micro-batch size across all shards (0.0 before any batch).
    pub fn mean_batch_rows(&self) -> f64 {
        let rows: u64 = self.shards.iter().map(|s| s.served_rows).sum();
        let batches = self.batches();
        if batches == 0 {
            0.0
        } else {
            rows as f64 / batches as f64
        }
    }

    /// Largest micro-batch served on any shard.
    pub fn max_batch_rows(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.max_batch_rows)
            .max()
            .unwrap_or(0)
    }
}

pub(crate) struct Shared<St: ReplicaStore> {
    pub(crate) store: St,
    queues: Vec<MpmcQueue<Request<RespOf<St>>>>,
    counters: Vec<ShardCounters>,
    next_shard: AtomicUsize,
    pub(crate) state_dim: usize,
    pub(crate) action_dim: usize,
}

/// The replica-agnostic server engine: N sharded request queues, one
/// deadline micro-batcher thread per shard, all serving immutable
/// replicas loaded from the store once per batch.
///
/// Dropping the core closes every queue (in-flight and already-queued
/// requests are still served — graceful drain) and joins the batcher
/// threads.
pub(crate) struct ServerCore<St: ReplicaStore> {
    pub(crate) shared: Arc<Shared<St>>,
    batchers: Vec<JoinHandle<()>>,
}

impl<St: ReplicaStore> ServerCore<St> {
    pub(crate) fn start(
        store: St,
        state_dim: usize,
        action_dim: usize,
        cfg: ServeConfig,
    ) -> Result<Self, ServeError> {
        if cfg.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be ≥ 1".into()));
        }
        if cfg.shards == 0 {
            return Err(ServeError::InvalidConfig("shards must be ≥ 1".into()));
        }
        let par = Parallelism::from_env_or(cfg.workers);
        let shared = Arc::new(Shared {
            store,
            queues: (0..cfg.shards).map(|_| MpmcQueue::new()).collect(),
            counters: (0..cfg.shards).map(|_| ShardCounters::default()).collect(),
            next_shard: AtomicUsize::new(0),
            state_dim,
            action_dim,
        });
        let batchers = (0..cfg.shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                let par = par.clone();
                let (max_batch, max_delay) = (cfg.max_batch, cfg.max_delay);
                thread::Builder::new()
                    .name(format!("fixar-serve-{shard}"))
                    .spawn(move || batcher_loop(&shared, shard, max_batch, max_delay, &par))
                    .expect("spawning batcher thread")
            })
            .collect();
        Ok(Self { shared, batchers })
    }

    pub(crate) fn stats(&self) -> ServeStats {
        ServeStats {
            shards: self
                .shared
                .counters
                .iter()
                .map(|c| ShardStats {
                    requests: c.requests.load(Ordering::Relaxed),
                    batches: c.batches.load(Ordering::Relaxed),
                    full_flushes: c.full_flushes.load(Ordering::Relaxed),
                    deadline_flushes: c.deadline_flushes.load(Ordering::Relaxed),
                    served_rows: c.served_rows.load(Ordering::Relaxed),
                    max_batch_rows: c.max_batch_rows.load(Ordering::Relaxed),
                    dropped_replies: c.dropped_replies.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    pub(crate) fn close_and_join(&mut self) {
        for q in &self.shared.queues {
            q.close();
        }
        for h in self.batchers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<St: ReplicaStore> Drop for ServerCore<St> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Enqueues an observation (round-robin across shards) and returns a
/// pending handle — the shared open-loop submission path behind both
/// client types.
pub(crate) fn submit_obs<St: ReplicaStore>(
    shared: &Shared<St>,
    obs: &[f64],
) -> Result<PendingReply<RespOf<St>>, ServeError> {
    if obs.len() != shared.state_dim {
        return Err(ServeError::WrongDimension {
            expected: shared.state_dim,
            got: obs.len(),
        });
    }
    let shards = shared.queues.len();
    let shard = shared.next_shard.fetch_add(1, Ordering::Relaxed) % shards;
    let (reply, rx) = oneshot();
    let request = Request {
        obs: obs.to_vec(),
        reply,
    };
    if shared.queues[shard].push(request).is_err() {
        return Err(ServeError::Shutdown);
    }
    shared.counters[shard]
        .requests
        .fetch_add(1, Ordering::Relaxed);
    Ok(PendingReply { rx })
}

fn batcher_loop<St: ReplicaStore>(
    shared: &Shared<St>,
    shard: usize,
    max_batch: usize,
    max_delay: Duration,
    par: &Parallelism,
) {
    let queue = &shared.queues[shard];
    let counters = &shared.counters[shard];
    // `pop` blocks until the shard has work and returns `None` only once
    // the queue is closed *and* drained, so shutdown serves every
    // accepted request.
    while let Some(first) = queue.pop() {
        let deadline = Instant::now() + max_delay;
        let mut requests = vec![first];
        while requests.len() < max_batch {
            match queue.pop_deadline(deadline) {
                Some(r) => requests.push(r),
                None => break, // deadline passed (or queue closed empty)
            }
        }
        let rows = requests.len();
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .served_rows
            .fetch_add(rows as u64, Ordering::Relaxed);
        counters
            .max_batch_rows
            .fetch_max(rows as u64, Ordering::Relaxed);
        if rows == max_batch {
            counters.full_flushes.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.deadline_flushes.fetch_add(1, Ordering::Relaxed);
        }

        // One batch = one replica: load once, serve every row from it.
        let replica = shared.store.load_replica();
        let mut obs = Matrix::zeros(rows, shared.state_dim);
        for (i, r) in requests.iter().enumerate() {
            obs.row_mut(i).copy_from_slice(&r.obs);
        }
        match replica.serve_batch(&obs, par) {
            Ok(actions) => {
                for (i, r) in requests.into_iter().enumerate() {
                    let resp = replica.respond(actions.row(i).to_vec(), rows);
                    if r.reply.send(Ok(resp)).is_err() {
                        counters.dropped_replies.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(err) => {
                for r in requests {
                    if r.reply.send(Err(err.clone())).is_err() {
                        counters.dropped_replies.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// The request-driven serving front door: N sharded request queues, one
/// deadline micro-batcher thread per shard, all serving immutable
/// [`PolicySnapshot`] replicas published through an atomic swap.
///
/// See the [crate docs](crate) for semantics and an end-to-end example;
/// `examples/serve_quickstart.rs` drives a live trainer against it.
///
/// Dropping the server closes every queue (in-flight and already-queued
/// requests are still served — graceful drain) and joins the batcher
/// threads.
pub struct ActionServer<S: Scalar> {
    core: ServerCore<SnapshotStore<S>>,
}

impl<S: Scalar> ActionServer<S> {
    /// Starts the server: spawns one batcher thread per shard, serving
    /// `initial` until a newer snapshot is published.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] if `max_batch` or `shards`
    /// is zero.
    pub fn start(initial: PolicySnapshot<S>, cfg: ServeConfig) -> Result<Self, ServeError> {
        let (state_dim, action_dim) = (initial.state_dim(), initial.action_dim());
        let core = ServerCore::start(SnapshotStore::new(initial), state_dim, action_dim, cfg)?;
        Ok(Self { core })
    }

    /// A clonable client handle for submitting observations.
    pub fn client(&self) -> ServeClient<S> {
        ServeClient {
            shared: Arc::clone(&self.core.shared),
        }
    }

    /// The trainer-side handle for publishing fresher snapshots.
    pub fn publisher(&self) -> SnapshotPublisher<S> {
        SnapshotPublisher {
            shared: Arc::clone(&self.core.shared),
        }
    }

    /// Id of the snapshot the *next* batch will be served from.
    pub fn current_snapshot_id(&self) -> u64 {
        self.core.shared.store.current_id()
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> ServeStats {
        self.core.stats()
    }

    /// Shuts down gracefully: rejects new submissions, serves every
    /// already-queued request, joins the batcher threads, and returns
    /// the final counters. (Dropping the server does the same, minus the
    /// stats.)
    pub fn shutdown(self) -> ServeStats {
        let mut core = self.core;
        core.close_and_join();
        core.stats()
    }
}

/// Client handle: submit observations, receive snapshot-stamped actions.
///
/// Cloning is cheap (an `Arc` bump); clones may be moved freely across
/// client threads.
pub struct ServeClient<S: Scalar> {
    shared: Arc<Shared<SnapshotStore<S>>>,
}

impl<S: Scalar> Clone for ServeClient<S> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<S: Scalar> ServeClient<S> {
    /// Observation dimension the served policy expects.
    pub fn state_dim(&self) -> usize {
        self.shared.state_dim
    }

    /// Action dimension the served policy produces.
    pub fn action_dim(&self) -> usize {
        self.shared.action_dim
    }

    /// Enqueues an observation (round-robin across shards) and returns
    /// immediately with a [`PendingAction`] to collect the response
    /// from — the open-loop submission path.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WrongDimension`] for a mis-sized
    /// observation, [`ServeError::Shutdown`] if the server has shut
    /// down.
    pub fn submit(&self, obs: &[f64]) -> Result<PendingAction, ServeError> {
        submit_obs(&self.shared, obs)
    }

    /// Blocking convenience wrapper: [`ServeClient::submit`] +
    /// [`PendingAction::wait`].
    ///
    /// # Errors
    ///
    /// As [`ServeClient::submit`], plus anything the batcher reports
    /// (e.g. [`ServeError::Inference`]).
    pub fn request(&self, obs: &[f64]) -> Result<ActionResponse, ServeError> {
        self.submit(obs)?.wait()
    }
}

/// A response that has been requested but possibly not yet served.
pub struct PendingReply<R> {
    rx: OneShotReceiver<Result<R, ServeError>>,
}

impl<R> PendingReply<R> {
    /// Blocks until the micro-batch containing this request is served.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Shutdown`] if the server died before
    /// serving it, or whatever error the batcher reported.
    pub fn wait(self) -> Result<R, ServeError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::Shutdown),
        }
    }
}

/// A pending snapshot-served response (see [`PendingReply`]).
pub type PendingAction = PendingReply<ActionResponse>;

/// Trainer-side handle: publish fresher snapshots without ever blocking
/// the request path (the swap is O(1) under a lock no inference holds).
pub struct SnapshotPublisher<S: Scalar> {
    shared: Arc<Shared<SnapshotStore<S>>>,
}

impl<S: Scalar> Clone for SnapshotPublisher<S> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<S: Scalar> SnapshotPublisher<S> {
    /// Atomically swaps in `snapshot` (typically at an episode
    /// boundary), returning its id. Batches already in flight finish on
    /// the snapshot they loaded; every later batch serves — and is
    /// stamped with — the new id.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WrongDimension`] if the snapshot's
    /// dimensions differ from the served policy's, and
    /// [`ServeError::StaleSnapshot`] unless its id strictly increases.
    pub fn publish(&self, snapshot: PolicySnapshot<S>) -> Result<u64, ServeError> {
        if snapshot.state_dim() != self.shared.state_dim {
            return Err(ServeError::WrongDimension {
                expected: self.shared.state_dim,
                got: snapshot.state_dim(),
            });
        }
        if snapshot.action_dim() != self.shared.action_dim {
            return Err(ServeError::WrongDimension {
                expected: self.shared.action_dim,
                got: snapshot.action_dim(),
            });
        }
        self.shared.store.publish(snapshot)
    }

    /// Id currently being served (the floor for the next publish).
    pub fn current_id(&self) -> u64 {
        self.shared.store.current_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;
    use fixar_rl::{Ddpg, DdpgConfig};

    fn agent() -> Ddpg<Fx32> {
        Ddpg::new(3, 1, DdpgConfig::small_test()).unwrap()
    }

    fn obs(i: usize) -> Vec<f64> {
        (0..3).map(|c| ((i * 3 + c) as f64).sin() * 0.8).collect()
    }

    #[test]
    fn serves_and_stamps_snapshot_ids() {
        let a = agent();
        let server = ActionServer::start(a.policy_snapshot(0), ServeConfig::default()).unwrap();
        let client = server.client();
        let snap = a.policy_snapshot(0);
        for i in 0..32 {
            let resp = client.request(&obs(i)).unwrap();
            assert_eq!(resp.snapshot_id, 0);
            assert!(resp.batch_rows >= 1);
            assert_eq!(resp.action, snap.select_action(&obs(i)).unwrap());
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests(), 32);
        assert_eq!(stats.shards.len(), 1);
        assert!(stats.batches() >= 1);
    }

    #[test]
    fn rejects_bad_configs_and_bad_dimensions() {
        let a = agent();
        assert!(matches!(
            ActionServer::start(
                a.policy_snapshot(0),
                ServeConfig {
                    max_batch: 0,
                    ..ServeConfig::default()
                }
            ),
            Err(ServeError::InvalidConfig(_))
        ));
        let server = ActionServer::start(a.policy_snapshot(0), ServeConfig::default()).unwrap();
        assert!(matches!(
            server.client().request(&[1.0]),
            Err(ServeError::WrongDimension {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn publish_swaps_ids_and_rejects_stale_ones() {
        let a = agent();
        let server = ActionServer::start(a.policy_snapshot(3), ServeConfig::default()).unwrap();
        let publisher = server.publisher();
        assert_eq!(publisher.publish(a.policy_snapshot(4)).unwrap(), 4);
        assert_eq!(server.current_snapshot_id(), 4);
        assert!(matches!(
            publisher.publish(a.policy_snapshot(4)),
            Err(ServeError::StaleSnapshot {
                current: 4,
                offered: 4
            })
        ));
        let resp = server.client().request(&obs(0)).unwrap();
        assert_eq!(resp.snapshot_id, 4);
    }

    #[test]
    fn shutdown_drains_queued_requests_then_rejects_new_ones() {
        let a = agent();
        let server = ActionServer::start(
            a.policy_snapshot(0),
            ServeConfig {
                shards: 2,
                max_delay: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let client = server.client();
        let pending: Vec<_> = (0..16).map(|i| client.submit(&obs(i)).unwrap()).collect();
        drop(server); // graceful drain
        for p in pending {
            p.wait().unwrap();
        }
        assert!(matches!(client.submit(&obs(0)), Err(ServeError::Shutdown)));
    }

    #[test]
    fn concurrent_clients_all_get_correct_rows() {
        let a = agent();
        let server = ActionServer::start(
            a.policy_snapshot(0),
            ServeConfig {
                shards: 2,
                max_batch: 8,
                max_delay: Duration::from_micros(200),
                workers: 2,
            },
        )
        .unwrap();
        let reference = a.policy_snapshot(0);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let client = server.client();
                thread::spawn(move || {
                    (0..25)
                        .map(|i| {
                            let o = obs(t * 100 + i);
                            (o.clone(), client.request(&o).unwrap())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for t in threads {
            for (o, resp) in t.join().unwrap() {
                assert_eq!(resp.action, reference.select_action(&o).unwrap());
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests(), 100);
        assert_eq!(stats.shards.iter().map(|s| s.served_rows).sum::<u64>(), 100);
    }
}
