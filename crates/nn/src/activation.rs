//! Activation functions of the FIXAR networks.

use fixar_fixed::Scalar;

/// Activation function applied after a linear layer.
///
/// The paper's networks use ReLU on hidden layers; the actor applies an
/// additional `tanh` at the output (bounded continuous actions) and the
/// critic emits the raw Q-value. In hardware these are evaluated by the
/// activation unit between the accumulator and the activation memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Pass-through (critic output).
    #[default]
    Identity,
    /// Rectified linear unit (hidden layers).
    Relu,
    /// Hyperbolic tangent (actor output).
    Tanh,
}

impl Activation {
    /// Applies the activation to one pre-activation value.
    #[inline]
    pub fn apply<S: Scalar>(self, z: S) -> S {
        match self {
            Activation::Identity => z,
            Activation::Relu => z.relu(),
            Activation::Tanh => z.tanh(),
        }
    }

    /// Applies the activation elementwise in place.
    #[inline]
    pub fn apply_slice<S: Scalar>(self, zs: &mut [S]) {
        if self == Activation::Identity {
            return;
        }
        for z in zs {
            *z = self.apply(*z);
        }
    }

    /// Derivative with respect to the pre-activation `z`, expressed in
    /// terms of both `z` and the already-computed output `y = f(z)` (the
    /// tanh derivative reuses `y`, as the hardware does).
    #[inline]
    pub fn derivative<S: Scalar>(self, z: S, y: S) -> S {
        match self {
            Activation::Identity => S::one(),
            Activation::Relu => {
                if z > S::zero() {
                    S::one()
                } else {
                    S::zero()
                }
            }
            Activation::Tanh => S::one() - y * y,
        }
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-1.5f64), 0.0);
        assert_eq!(Activation::Relu.apply(2.5f64), 2.5);
    }

    #[test]
    fn tanh_derivative_uses_output() {
        let z = 0.7f64;
        let y = z.tanh();
        let d = Activation::Tanh.derivative(z, y);
        assert!((d - (1.0 - y * y)).abs() < 1e-12);
    }

    #[test]
    fn relu_derivative_is_step() {
        assert_eq!(Activation::Relu.derivative(0.5f64, 0.5), 1.0);
        assert_eq!(Activation::Relu.derivative(-0.5f64, 0.0), 0.0);
        // At exactly zero the subgradient 0 is used, matching hardware.
        assert_eq!(Activation::Relu.derivative(0.0f64, 0.0), 0.0);
    }

    #[test]
    fn identity_is_transparent() {
        let mut xs = vec![Fx32::from_f64(1.0), Fx32::from_f64(-2.0)];
        let orig = xs.clone();
        Activation::Identity.apply_slice(&mut xs);
        assert_eq!(xs, orig);
        assert_eq!(Activation::Identity.derivative(orig[0], orig[0]), Fx32::ONE);
    }

    #[test]
    fn fixed_point_tanh_saturates_to_one() {
        let y = Activation::Tanh.apply(Fx32::from_f64(50.0));
        assert_eq!(y.to_f64(), 1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Activation::Relu.name(), "relu");
        assert_eq!(Activation::Tanh.name(), "tanh");
        assert_eq!(Activation::Identity.name(), "identity");
    }
}
