//! Weight initialization.
//!
//! Weights are always drawn in `f64` from a seeded RNG and converted to
//! the backend scalar afterwards, so every precision backend starts from
//! the same underlying model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Initialization scheme for a linear layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightInit {
    /// Xavier/Glorot uniform: `U(±sqrt(6/(fan_in+fan_out)))` — used for
    /// hidden layers.
    XavierUniform,
    /// Small uniform `U(±bound)` — DDPG initializes final layers with
    /// `±3e-3` so initial actions/Q-values are near zero.
    Uniform(f64),
}

impl WeightInit {
    /// Sampling bound for a layer of the given fan-in/fan-out.
    pub fn bound(self, fan_in: usize, fan_out: usize) -> f64 {
        match self {
            WeightInit::XavierUniform => (6.0 / (fan_in + fan_out) as f64).sqrt(),
            WeightInit::Uniform(b) => b,
        }
    }

    /// Draws `n` values in `f64`.
    pub fn sample(self, fan_in: usize, fan_out: usize, n: usize, rng: &mut StdRng) -> Vec<f64> {
        let b = self.bound(fan_in, fan_out);
        (0..n).map(|_| rng.gen_range(-b..=b)).collect()
    }
}

/// Deterministic RNG for weight generation.
pub(crate) fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bound_formula() {
        let b = WeightInit::XavierUniform.bound(400, 300);
        assert!((b - (6.0 / 700.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut r1 = seeded_rng(7);
        let mut r2 = seeded_rng(7);
        let a = WeightInit::XavierUniform.sample(10, 10, 32, &mut r1);
        let b = WeightInit::XavierUniform.sample(10, 10, 32, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn samples_respect_bound() {
        let mut rng = seeded_rng(3);
        let vals = WeightInit::Uniform(0.003).sample(1, 1, 1000, &mut rng);
        assert!(vals.iter().all(|v| v.abs() <= 0.003));
        assert!(
            vals.iter().any(|v| v.abs() > 1e-4),
            "should not be all-zero"
        );
    }
}
