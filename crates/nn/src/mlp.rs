//! Multilayer perceptron with back-propagation and QAT hooks.

use fixar_fixed::Scalar;
use fixar_pool::Parallelism;
use fixar_tensor::{vector, Matrix};

use crate::activation::Activation;
use crate::error::NnError;
use crate::init::{seeded_rng, WeightInit};
use crate::qat::QatRuntime;

/// Configuration of a fully-connected network.
///
/// `layer_sizes` includes the input dimension, e.g. the paper's actor for
/// HalfCheetah is `vec![17, 400, 300, 6]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Layer widths, input first. Must have at least two entries.
    pub layer_sizes: Vec<usize>,
    /// Activation after every hidden layer (paper: ReLU).
    pub hidden_activation: Activation,
    /// Activation after the output layer (actor: tanh, critic: identity).
    pub output_activation: Activation,
    /// Initialization for hidden layers.
    pub hidden_init: WeightInit,
    /// Initialization for the output layer (DDPG: small uniform).
    pub output_init: WeightInit,
}

impl MlpConfig {
    /// Creates a configuration with the paper's defaults: ReLU hidden
    /// layers, identity output, Xavier hidden init, ±3e-3 output init.
    pub fn new(layer_sizes: Vec<usize>) -> Self {
        Self {
            layer_sizes,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Identity,
            hidden_init: WeightInit::XavierUniform,
            output_init: WeightInit::Uniform(3e-3),
        }
    }

    /// Sets the output activation (builder style).
    pub fn with_output_activation(mut self, act: Activation) -> Self {
        self.output_activation = act;
        self
    }

    /// Sets the hidden activation (builder style).
    pub fn with_hidden_activation(mut self, act: Activation) -> Self {
        self.hidden_activation = act;
        self
    }

    /// Number of weight layers (`layer_sizes.len() - 1`).
    pub fn num_layers(&self) -> usize {
        self.layer_sizes.len().saturating_sub(1)
    }

    fn validate(&self) -> Result<(), NnError> {
        if self.layer_sizes.len() < 2 {
            return Err(NnError::InvalidConfig(
                "layer_sizes needs at least an input and an output width".into(),
            ));
        }
        if self.layer_sizes.contains(&0) {
            return Err(NnError::InvalidConfig("zero-width layer".into()));
        }
        Ok(())
    }
}

/// Per-layer gradients of an [`Mlp`], accumulated across a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpGrads<S> {
    /// Weight gradients, one matrix per layer.
    pub w: Vec<Matrix<S>>,
    /// Bias gradients, one vector per layer.
    pub b: Vec<Vec<S>>,
}

impl<S: Scalar> MlpGrads<S> {
    /// Zero gradients shaped like `mlp`.
    pub fn zeros_like(mlp: &Mlp<S>) -> Self {
        Self {
            w: mlp
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            b: mlp
                .biases
                .iter()
                .map(|b| vec![S::zero(); b.len()])
                .collect(),
        }
    }

    /// Resets all gradients to zero.
    pub fn reset(&mut self) {
        for w in &mut self.w {
            w.fill_zero();
        }
        for b in &mut self.b {
            for v in b {
                *v = S::zero();
            }
        }
    }

    /// Scales all gradients by a constant (e.g. `1/batch`).
    pub fn scale(&mut self, factor: S) {
        for w in &mut self.w {
            w.map_inplace(|v| v * factor);
        }
        for b in &mut self.b {
            vector::scale(factor, b);
        }
    }

    /// Accumulates another gradient buffer into this one — the reduction
    /// of per-core partial gradients into the shared gradient memory.
    ///
    /// # Panics
    ///
    /// Panics if the buffers were shaped from different networks.
    pub fn accumulate(&mut self, other: &MlpGrads<S>) {
        assert_eq!(self.w.len(), other.w.len(), "gradient layer count mismatch");
        for (mine, theirs) in self.w.iter_mut().zip(&other.w) {
            let dst = mine.as_mut_slice();
            for (d, &s) in dst.iter_mut().zip(theirs.as_slice()) {
                *d += s;
            }
        }
        for (mine, theirs) in self.b.iter_mut().zip(&other.b) {
            for (d, &s) in mine.iter_mut().zip(theirs) {
                *d += s;
            }
        }
    }
}

/// Activations captured during a forward pass, needed by back-propagation.
///
/// When the pass ran with quantization enabled, `inputs` holds the
/// *quantized* activations — so the weight-gradient outer products consume
/// exactly what Algorithm 1 prescribes (`Update θ with Qn(A)`).
#[derive(Debug, Clone)]
pub struct ForwardTrace<S> {
    /// Input to each layer: `inputs[0]` is the network input, `inputs[l]`
    /// the (possibly quantized) output of layer `l-1`.
    pub inputs: Vec<Vec<S>>,
    /// Pre-activation `z = W·a + b` of each layer.
    pub pre: Vec<Vec<S>>,
    /// Final network output (after output activation and, under QAT,
    /// quantization).
    pub output: Vec<S>,
}

/// Activations captured during a **batched** forward pass: the same data
/// as [`ForwardTrace`], with one minibatch sample per matrix row.
///
/// Row `b` of every matrix is bit-identical to the vectors a per-sample
/// [`ForwardTrace`] of sample `b` would hold (see the accumulation-order
/// contract in the `fixar-tensor` crate docs).
#[derive(Debug, Clone)]
pub struct BatchTrace<S> {
    /// Input to each layer: `inputs[0]` is the `(batch, in_dim)` network
    /// input, `inputs[l]` the (possibly quantized) output of layer `l-1`.
    pub inputs: Vec<Matrix<S>>,
    /// Pre-activation `Z = A·Wᵀ + b` of each layer, `(batch, fan_out)`.
    pub pre: Vec<Matrix<S>>,
    /// Final network output, `(batch, out_dim)`.
    pub output: Matrix<S>,
}

impl<S: Scalar> BatchTrace<S> {
    /// Number of samples in the traced minibatch.
    pub fn batch_size(&self) -> usize {
        self.output.rows()
    }
}

/// Fully-connected network, generic over the numeric backend.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp<S> {
    weights: Vec<Matrix<S>>,
    biases: Vec<Vec<S>>,
    hidden_act: Activation,
    output_act: Activation,
    layer_sizes: Vec<usize>,
}

impl<S: Scalar> Mlp<S> {
    /// Creates a network with freshly initialized weights.
    ///
    /// Weights are drawn in `f64` from a deterministic RNG seeded with
    /// `seed`, then converted to `S`; the same seed yields the same
    /// underlying model at every precision.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for malformed configurations.
    pub fn new_random(cfg: &MlpConfig, seed: u64) -> Result<Self, NnError> {
        cfg.validate()?;
        let mut rng = seeded_rng(seed);
        let n = cfg.num_layers();
        let mut weights = Vec::with_capacity(n);
        let mut biases = Vec::with_capacity(n);
        for l in 0..n {
            let (fan_in, fan_out) = (cfg.layer_sizes[l], cfg.layer_sizes[l + 1]);
            let init = if l + 1 == n {
                cfg.output_init
            } else {
                cfg.hidden_init
            };
            let wf = init.sample(fan_in, fan_out, fan_in * fan_out, &mut rng);
            let bf = init.sample(fan_in, fan_out, fan_out, &mut rng);
            let data = wf.into_iter().map(S::from_f64).collect();
            weights
                .push(Matrix::from_vec(fan_out, fan_in, data).expect("init produced sized buffer"));
            biases.push(bf.into_iter().map(S::from_f64).collect());
        }
        Ok(Self {
            weights,
            biases,
            hidden_act: cfg.hidden_activation,
            output_act: cfg.output_activation,
            layer_sizes: cfg.layer_sizes.clone(),
        })
    }

    /// Number of weight layers.
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Layer widths, input first.
    #[inline]
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }

    /// Input dimension.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.layer_sizes[0]
    }

    /// Output dimension.
    #[inline]
    pub fn output_dim(&self) -> usize {
        *self.layer_sizes.last().expect("validated non-empty")
    }

    /// Hidden activation function.
    #[inline]
    pub fn hidden_activation(&self) -> Activation {
        self.hidden_act
    }

    /// Output activation function.
    #[inline]
    pub fn output_activation(&self) -> Activation {
        self.output_act
    }

    /// Weight matrix of layer `l` (rows = fan-out, cols = fan-in).
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_layers()`.
    #[inline]
    pub fn weight(&self, l: usize) -> &Matrix<S> {
        &self.weights[l]
    }

    /// Mutable weight matrix of layer `l` (used by optimizers and the
    /// accelerator write-back path).
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_layers()`.
    #[inline]
    pub fn weight_mut(&mut self, l: usize) -> &mut Matrix<S> {
        &mut self.weights[l]
    }

    /// Bias vector of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_layers()`.
    #[inline]
    pub fn bias(&self, l: usize) -> &[S] {
        &self.biases[l]
    }

    /// Mutable bias vector of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_layers()`.
    #[inline]
    pub fn bias_mut(&mut self, l: usize) -> &mut [S] {
        &mut self.biases[l]
    }

    /// Total number of parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.weights.iter().map(Matrix::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Model size in bytes at this backend's precision (what the paper
    /// reports as "network size"; 32-bit weights for `Fx32`).
    pub fn model_bytes(&self) -> usize {
        self.param_count() * (S::BITS as usize / 8)
    }

    /// Plain inference without gradient bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.len() != input_dim()`.
    pub fn forward(&self, x: &[S]) -> Result<Vec<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        Ok(self.forward_qat(x, &mut qat)?.output)
    }

    /// Forward pass capturing the trace needed by [`Mlp::backward`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.len() != input_dim()`.
    pub fn forward_trace(&self, x: &[S]) -> Result<ForwardTrace<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        self.forward_qat(x, &mut qat)
    }

    /// Forward pass through the QAT runtime: in `Calibrate` mode every
    /// activation point feeds its [`fixar_fixed::RangeMonitor`]; in
    /// `Quantize` mode activations are projected onto the n-bit grid
    /// before being stored and propagated.
    ///
    /// Quantization point `0` is the network input; point `l+1` is the
    /// post-activation output of layer `l`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] on input-size mismatch and
    /// [`NnError::InvalidConfig`] if `qat` was built for a different
    /// number of points.
    pub fn forward_qat(&self, x: &[S], qat: &mut QatRuntime) -> Result<ForwardTrace<S>, NnError> {
        self.forward_with(x, qat.num_points(), |point, xs| qat.process(point, xs))
    }

    /// Forward pass against an immutable QAT runtime: frozen quantizers
    /// apply but no ranges are recorded. This is the thread-parallel
    /// training path — workers share `&self` and `&QatRuntime`,
    /// calibrating (if needed) into per-worker clones merged afterwards
    /// with [`QatRuntime::merge_from`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::forward_qat`].
    pub fn forward_qat_frozen(
        &self,
        x: &[S],
        qat: &QatRuntime,
    ) -> Result<ForwardTrace<S>, NnError> {
        self.forward_with(x, qat.num_points(), |point, xs| qat.apply(point, xs))
    }

    fn forward_with(
        &self,
        x: &[S],
        qat_points: usize,
        mut process: impl FnMut(usize, &mut [S]),
    ) -> Result<ForwardTrace<S>, NnError> {
        if x.len() != self.input_dim() {
            return Err(NnError::Shape(fixar_tensor::ShapeError::new(
                "mlp input",
                (self.input_dim(), 1),
                (x.len(), 1),
            )));
        }
        if qat_points != self.num_layers() + 1 {
            return Err(NnError::InvalidConfig(format!(
                "qat runtime has {} points, network needs {}",
                qat_points,
                self.num_layers() + 1
            )));
        }
        let n = self.num_layers();
        let mut inputs = Vec::with_capacity(n);
        let mut pre = Vec::with_capacity(n);

        let mut a = x.to_vec();
        process(0, &mut a);
        for l in 0..n {
            let mut z = self.weights[l].gemv_alloc(&a)?;
            for (zi, &bi) in z.iter_mut().zip(&self.biases[l]) {
                *zi += bi;
            }
            let act = if l + 1 == n {
                self.output_act
            } else {
                self.hidden_act
            };
            let mut y = z.clone();
            act.apply_slice(&mut y);
            process(l + 1, &mut y);
            inputs.push(a);
            pre.push(z);
            a = y;
        }
        Ok(ForwardTrace {
            inputs,
            pre,
            output: a,
        })
    }

    /// Batched inference: one minibatch sample per row of `x`, no
    /// gradient bookkeeping. Row `b` of the result is bit-identical to
    /// `forward(x.row(b))`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.cols() != input_dim()`.
    pub fn forward_batch(&self, x: &Matrix<S>) -> Result<Matrix<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        Ok(self.forward_batch_qat(x, &mut qat)?.output)
    }

    /// Pool-parallel [`Mlp::forward_batch`]: every layer's batched MVM
    /// shards across the workers of `par` (see
    /// [`Matrix::gemv_batch_par`]); bit-identical to the sequential
    /// batched pass — and hence to the per-sample pass — at every
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.cols() != input_dim()`.
    pub fn forward_batch_par(
        &self,
        x: &Matrix<S>,
        par: &Parallelism,
    ) -> Result<Matrix<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        Ok(self.forward_batch_qat_par(x, &mut qat, par)?.output)
    }

    /// Batched forward pass capturing the trace needed by
    /// [`Mlp::backward_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.cols() != input_dim()`.
    pub fn forward_batch_trace(&self, x: &Matrix<S>) -> Result<BatchTrace<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        self.forward_batch_qat(x, &mut qat)
    }

    /// Pool-parallel [`Mlp::forward_batch_trace`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.cols() != input_dim()`.
    pub fn forward_batch_trace_par(
        &self,
        x: &Matrix<S>,
        par: &Parallelism,
    ) -> Result<BatchTrace<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        self.forward_batch_qat_par(x, &mut qat, par)
    }

    /// Batched forward pass through the QAT runtime: every quantization
    /// point observes (or quantizes) the **whole activation matrix** of
    /// the minibatch in one call, instead of one sample vector at a time.
    /// Range monitors see exactly the same values as `batch` per-sample
    /// passes (min/max/count are order-independent), and frozen
    /// quantizers apply elementwise, so the batched pass stays
    /// bit-exact with the per-sample path under every QAT mode.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] on input-width mismatch and
    /// [`NnError::InvalidConfig`] if `qat` was built for a different
    /// number of points.
    pub fn forward_batch_qat(
        &self,
        x: &Matrix<S>,
        qat: &mut QatRuntime,
    ) -> Result<BatchTrace<S>, NnError> {
        self.forward_batch_with(
            x,
            qat.num_points(),
            &Parallelism::sequential(),
            |point, xs| qat.process(point, xs),
        )
    }

    /// Pool-parallel [`Mlp::forward_batch_qat`]: the batched MVMs shard
    /// across the pool; QAT observation/quantization still processes the
    /// whole activation matrix on the calling thread (monitors are
    /// order-independent, frozen quantizers elementwise), so the trace
    /// is bit-identical to the sequential batched pass under every QAT
    /// mode.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::forward_batch_qat`].
    pub fn forward_batch_qat_par(
        &self,
        x: &Matrix<S>,
        qat: &mut QatRuntime,
        par: &Parallelism,
    ) -> Result<BatchTrace<S>, NnError> {
        self.forward_batch_with(x, qat.num_points(), par, |point, xs| qat.process(point, xs))
    }

    /// Batched forward pass against an immutable QAT runtime (frozen
    /// quantizers apply, nothing is recorded) — the batched analogue of
    /// [`Mlp::forward_qat_frozen`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::forward_batch_qat`].
    pub fn forward_batch_qat_frozen(
        &self,
        x: &Matrix<S>,
        qat: &QatRuntime,
    ) -> Result<BatchTrace<S>, NnError> {
        self.forward_batch_with(
            x,
            qat.num_points(),
            &Parallelism::sequential(),
            |point, xs| qat.apply(point, xs),
        )
    }

    /// Pool-parallel [`Mlp::forward_batch_qat_frozen`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::forward_batch_qat`].
    pub fn forward_batch_qat_frozen_par(
        &self,
        x: &Matrix<S>,
        qat: &QatRuntime,
        par: &Parallelism,
    ) -> Result<BatchTrace<S>, NnError> {
        self.forward_batch_with(x, qat.num_points(), par, |point, xs| qat.apply(point, xs))
    }

    fn forward_batch_with(
        &self,
        x: &Matrix<S>,
        qat_points: usize,
        par: &Parallelism,
        mut process: impl FnMut(usize, &mut [S]),
    ) -> Result<BatchTrace<S>, NnError> {
        if x.cols() != self.input_dim() {
            return Err(NnError::Shape(fixar_tensor::ShapeError::new(
                "mlp batch input",
                (x.rows(), self.input_dim()),
                x.shape(),
            )));
        }
        if qat_points != self.num_layers() + 1 {
            return Err(NnError::InvalidConfig(format!(
                "qat runtime has {} points, network needs {}",
                qat_points,
                self.num_layers() + 1
            )));
        }
        let n = self.num_layers();
        let mut inputs = Vec::with_capacity(n);
        let mut pre = Vec::with_capacity(n);

        let mut a = x.clone();
        process(0, a.as_mut_slice());
        for l in 0..n {
            let mut z = self.weights[l].gemv_batch_par_alloc(&a, par)?;
            z.add_row_broadcast(&self.biases[l])?;
            let act = if l + 1 == n {
                self.output_act
            } else {
                self.hidden_act
            };
            let mut y = z.clone();
            act.apply_slice(y.as_mut_slice());
            process(l + 1, y.as_mut_slice());
            inputs.push(a);
            pre.push(z);
            a = y;
        }
        Ok(BatchTrace {
            inputs,
            pre,
            output: a,
        })
    }

    /// Back-propagates a minibatch of output gradients (`dl_dout`, one
    /// sample per row) through the batched trace, accumulating parameter
    /// gradients into `grads` and returning the `(batch, input_dim)`
    /// matrix of input gradients.
    ///
    /// Gradient accumulation across the batch runs in **ascending sample
    /// order** (the documented reduction order of the gradient memory),
    /// so the accumulated `grads` are bit-identical to calling
    /// [`Mlp::backward`] on each sample's trace in row order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `dl_dout` is not
    /// `(batch, output_dim())` or `grads` was shaped for another network.
    pub fn backward_batch(
        &self,
        trace: &BatchTrace<S>,
        dl_dout: &Matrix<S>,
        grads: &mut MlpGrads<S>,
    ) -> Result<Matrix<S>, NnError> {
        self.backward_batch_with(trace, dl_dout, grads, &Parallelism::sequential())
    }

    /// Pool-parallel [`Mlp::backward_batch`]: per layer, the transposed
    /// error MVM shards across batch rows and the weight-gradient
    /// accumulation shards across weight rows (see
    /// [`Matrix::gemv_t_batch_par`] / [`Matrix::add_outer_batch_par`]),
    /// so the accumulated gradients stay bit-identical to the
    /// sequential batched backward — and to the per-sample backward in
    /// ascending sample order — at every worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::backward_batch`].
    pub fn backward_batch_par(
        &self,
        trace: &BatchTrace<S>,
        dl_dout: &Matrix<S>,
        grads: &mut MlpGrads<S>,
        par: &Parallelism,
    ) -> Result<Matrix<S>, NnError> {
        self.backward_batch_with(trace, dl_dout, grads, par)
    }

    fn backward_batch_with(
        &self,
        trace: &BatchTrace<S>,
        dl_dout: &Matrix<S>,
        grads: &mut MlpGrads<S>,
        par: &Parallelism,
    ) -> Result<Matrix<S>, NnError> {
        let n = self.num_layers();
        let bsz = trace.batch_size();
        if dl_dout.shape() != (bsz, self.output_dim()) {
            return Err(NnError::Shape(fixar_tensor::ShapeError::new(
                "mlp batch backward",
                (bsz, self.output_dim()),
                dl_dout.shape(),
            )));
        }
        if grads.w.len() != n {
            return Err(NnError::InvalidConfig(
                "gradient buffer has wrong layer count".into(),
            ));
        }
        // Output-layer delta: dL/dZ = dL/dY ⊙ f'(Z), elementwise over the
        // whole minibatch matrix.
        let mut delta = dl_dout.clone();
        for ((d, &z), &y) in delta
            .as_mut_slice()
            .iter_mut()
            .zip(trace.pre[n - 1].as_slice())
            .zip(trace.output.as_slice())
        {
            *d *= self.output_act.derivative(z, y);
        }

        for l in (0..n).rev() {
            grads.w[l].add_outer_batch_par(&delta, &trace.inputs[l], par)?;
            // Bias gradients: ascending sample order, like the weights.
            for b in 0..bsz {
                for (gb, &d) in grads.b[l].iter_mut().zip(delta.row(b)) {
                    *gb += d;
                }
            }
            let err = self.weights[l].gemv_t_batch_par_alloc(&delta, par)?;
            if l > 0 {
                delta = err;
                for ((d, &z), &y) in delta
                    .as_mut_slice()
                    .iter_mut()
                    .zip(trace.pre[l - 1].as_slice())
                    .zip(trace.inputs[l].as_slice())
                {
                    *d *= self.hidden_act.derivative(z, y);
                }
            } else {
                return Ok(err);
            }
        }
        // Zero-layer networks are rejected at construction; `n >= 1`.
        unreachable!("validated networks have at least one layer");
    }

    /// Back-propagates `dl_dout` (∂loss/∂output) through the trace,
    /// accumulating parameter gradients into `grads` and returning
    /// ∂loss/∂input (the path by which the critic "leads the BP and WU of
    /// the actor network").
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `dl_dout.len() != output_dim()` or
    /// `grads` was not shaped by [`MlpGrads::zeros_like`] on this network.
    pub fn backward(
        &self,
        trace: &ForwardTrace<S>,
        dl_dout: &[S],
        grads: &mut MlpGrads<S>,
    ) -> Result<Vec<S>, NnError> {
        let n = self.num_layers();
        if dl_dout.len() != self.output_dim() {
            return Err(NnError::Shape(fixar_tensor::ShapeError::new(
                "mlp backward",
                (self.output_dim(), 1),
                (dl_dout.len(), 1),
            )));
        }
        if grads.w.len() != n {
            return Err(NnError::InvalidConfig(
                "gradient buffer has wrong layer count".into(),
            ));
        }
        // Output-layer delta: dL/dz = dL/dy ⊙ f'(z).
        let mut delta: Vec<S> = dl_dout
            .iter()
            .zip(trace.pre[n - 1].iter().zip(&trace.output))
            .map(|(&g, (&z, &y))| g * self.output_act.derivative(z, y))
            .collect();

        let mut input_err = Vec::new();
        for l in (0..n).rev() {
            grads.w[l].add_outer(&delta, &trace.inputs[l])?;
            for (gb, &d) in grads.b[l].iter_mut().zip(&delta) {
                *gb += d;
            }
            let err = self.weights[l].gemv_t_alloc(&delta)?;
            if l > 0 {
                delta = err
                    .iter()
                    .zip(trace.pre[l - 1].iter().zip(&trace.inputs[l]))
                    .map(|(&e, (&z, &y))| e * self.hidden_act.derivative(z, y))
                    .collect();
            } else {
                input_err = err;
            }
        }
        Ok(input_err)
    }

    /// Polyak/soft update `θ ← τ·θ_src + (1−τ)·θ` used for DDPG target
    /// networks, computed in the backend arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the architectures differ.
    pub fn soft_update_from(&mut self, src: &Mlp<S>, tau: f64) -> Result<(), NnError> {
        if self.layer_sizes != src.layer_sizes {
            return Err(NnError::InvalidConfig(
                "soft update requires identical architectures".into(),
            ));
        }
        let t = S::from_f64(tau);
        for (w, ws) in self.weights.iter_mut().zip(&src.weights) {
            let dst = w.as_mut_slice();
            for (d, &s) in dst.iter_mut().zip(ws.as_slice()) {
                *d = *d + t * (s - *d);
            }
        }
        for (b, bs) in self.biases.iter_mut().zip(&src.biases) {
            for (d, &s) in b.iter_mut().zip(bs) {
                *d = *d + t * (s - *d);
            }
        }
        Ok(())
    }

    /// Converts the model to another backend through `f64` (used when the
    /// dynamic-fixed mode hands a pre-trained full-precision model to the
    /// quantized phase, and to build bit-identical accelerator images).
    pub fn cast<T: Scalar>(&self) -> Mlp<T> {
        Mlp {
            weights: self.weights.iter().map(Matrix::cast).collect(),
            biases: self
                .biases
                .iter()
                .map(|b| b.iter().map(|v| T::from_f64(v.to_f64())).collect())
                .collect(),
            hidden_act: self.hidden_act,
            output_act: self.output_act,
            layer_sizes: self.layer_sizes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;

    fn tiny_cfg() -> MlpConfig {
        MlpConfig::new(vec![3, 5, 2]).with_output_activation(Activation::Tanh)
    }

    #[test]
    fn construction_validates_config() {
        assert!(Mlp::<f64>::new_random(&MlpConfig::new(vec![3]), 0).is_err());
        assert!(Mlp::<f64>::new_random(&MlpConfig::new(vec![3, 0, 2]), 0).is_err());
        assert!(Mlp::<f64>::new_random(&tiny_cfg(), 0).is_ok());
    }

    #[test]
    fn same_seed_same_model_across_precisions() {
        let f = Mlp::<f64>::new_random(&tiny_cfg(), 123).unwrap();
        let q = Mlp::<Fx32>::new_random(&tiny_cfg(), 123).unwrap();
        for l in 0..f.num_layers() {
            for (a, b) in f.weight(l).as_slice().iter().zip(q.weight(l).as_slice()) {
                assert!((a - b.to_f64()).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn forward_shape_checked() {
        let mlp = Mlp::<f64>::new_random(&tiny_cfg(), 1).unwrap();
        assert!(mlp.forward(&[1.0, 2.0]).is_err());
        assert_eq!(mlp.forward(&[1.0, 2.0, 3.0]).unwrap().len(), 2);
    }

    #[test]
    fn tanh_output_is_bounded() {
        let mlp = Mlp::<f64>::new_random(&tiny_cfg(), 5).unwrap();
        let y = mlp.forward(&[10.0, -10.0, 10.0]).unwrap();
        assert!(y.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let cfg = MlpConfig::new(vec![4, 6, 3]).with_output_activation(Activation::Tanh);
        let mlp = Mlp::<f64>::new_random(&cfg, 9).unwrap();
        let x = [0.3, -0.7, 0.5, 0.1];
        // Loss: L = ½ Σ y_k², so dL/dy = y.
        let trace = mlp.forward_trace(&x).unwrap();
        let dl_dout = trace.output.clone();
        let mut grads = MlpGrads::zeros_like(&mlp);
        let input_err = mlp.backward(&trace, &dl_dout, &mut grads).unwrap();

        let loss = |m: &Mlp<f64>| -> f64 {
            let y = m.forward(&x).unwrap();
            0.5 * y.iter().map(|v| v * v).sum::<f64>()
        };
        let eps = 1e-6;
        // Check a sample of weight coordinates in every layer.
        for l in 0..mlp.num_layers() {
            for &(r, c) in &[(0usize, 0usize), (1, 2), (2, 1)] {
                if r >= mlp.weight(l).rows() || c >= mlp.weight(l).cols() {
                    continue;
                }
                let mut plus = mlp.clone();
                plus.weight_mut(l)[(r, c)] += eps;
                let mut minus = mlp.clone();
                minus.weight_mut(l)[(r, c)] -= eps;
                let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                let an = grads.w[l][(r, c)];
                assert!(
                    (fd - an).abs() < 1e-6,
                    "layer {l} w[{r}][{c}]: fd={fd} an={an}"
                );
            }
            // And one bias coordinate.
            let mut plus = mlp.clone();
            plus.bias_mut(l)[0] += eps;
            let mut minus = mlp.clone();
            minus.bias_mut(l)[0] -= eps;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!((fd - grads.b[l][0]).abs() < 1e-6, "layer {l} bias");
        }
        // Input gradient against finite differences too.
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let yp = mlp.forward(&xp).unwrap();
            let ym = mlp.forward(&xm).unwrap();
            let lp = 0.5 * yp.iter().map(|v| v * v).sum::<f64>();
            let lm = 0.5 * ym.iter().map(|v| v * v).sum::<f64>();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - input_err[i]).abs() < 1e-6, "input {i}");
        }
    }

    #[test]
    fn soft_update_moves_toward_source() {
        let mut target = Mlp::<f64>::new_random(&tiny_cfg(), 1).unwrap();
        let online = Mlp::<f64>::new_random(&tiny_cfg(), 2).unwrap();
        let before = target.weight(0)[(0, 0)];
        let src = online.weight(0)[(0, 0)];
        target.soft_update_from(&online, 0.25).unwrap();
        let after = target.weight(0)[(0, 0)];
        assert!((after - (before + 0.25 * (src - before))).abs() < 1e-12);
        // tau = 1 copies exactly.
        target.soft_update_from(&online, 1.0).unwrap();
        assert_eq!(target.weight(0)[(0, 0)], src);
    }

    #[test]
    fn soft_update_rejects_architecture_mismatch() {
        let mut a = Mlp::<f64>::new_random(&tiny_cfg(), 1).unwrap();
        let b = Mlp::<f64>::new_random(&MlpConfig::new(vec![3, 4, 2]), 1).unwrap();
        assert!(a.soft_update_from(&b, 0.1).is_err());
    }

    #[test]
    fn param_count_matches_paper_model() {
        // HalfCheetah actor: 17*400+400 + 400*300+300 + 300*6+6 = 129_306.
        let cfg = MlpConfig::new(vec![17, 400, 300, 6]);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 0).unwrap();
        assert_eq!(mlp.param_count(), 129_306);
        assert_eq!(mlp.model_bytes(), 129_306 * 4);
    }

    #[test]
    fn fixed_point_forward_tracks_float() {
        let cfg = MlpConfig::new(vec![6, 16, 4]).with_output_activation(Activation::Tanh);
        let f = Mlp::<f64>::new_random(&cfg, 33).unwrap();
        let q: Mlp<Fx32> = f.cast();
        let x = [0.2, -0.4, 0.6, -0.8, 1.0, -0.1];
        let xf = f.forward(&x).unwrap();
        let xq = q
            .forward(&x.iter().map(|&v| Fx32::from_f64(v)).collect::<Vec<_>>())
            .unwrap();
        for (a, b) in xf.iter().zip(&xq) {
            assert!(
                (a - b.to_f64()).abs() < 3e-3,
                "float={a} fixed={}",
                b.to_f64()
            );
        }
    }

    /// Deterministic pseudo-random Fx32 batch for a given input width.
    fn fx32_batch(batch: usize, dim: usize) -> Matrix<Fx32> {
        Matrix::<f64>::from_fn(batch, dim, |b, i| {
            (((b * 13 + i * 7) % 17) as f64 - 8.0) * 0.11
        })
        .cast()
    }

    #[test]
    fn forward_batch_bit_exact_with_per_sample_forward() {
        let cfg = MlpConfig::new(vec![6, 16, 9, 4]).with_output_activation(Activation::Tanh);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 77).unwrap();
        let x = fx32_batch(9, 6);
        let y = mlp.forward_batch(&x).unwrap();
        assert_eq!(y.shape(), (9, 4));
        for b in 0..x.rows() {
            assert_eq!(
                y.row(b),
                mlp.forward(x.row(b)).unwrap().as_slice(),
                "row {b}"
            );
        }
    }

    #[test]
    fn forward_batch_trace_rows_match_per_sample_traces() {
        let cfg = MlpConfig::new(vec![5, 12, 3]);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 3).unwrap();
        let x = fx32_batch(6, 5);
        let bt = mlp.forward_batch_trace(&x).unwrap();
        for b in 0..x.rows() {
            let t = mlp.forward_trace(x.row(b)).unwrap();
            for l in 0..mlp.num_layers() {
                assert_eq!(bt.inputs[l].row(b), t.inputs[l].as_slice());
                assert_eq!(bt.pre[l].row(b), t.pre[l].as_slice());
            }
            assert_eq!(bt.output.row(b), t.output.as_slice());
        }
        assert_eq!(bt.batch_size(), 6);
    }

    #[test]
    fn backward_batch_bit_exact_with_sample_order_backward() {
        let cfg = MlpConfig::new(vec![5, 14, 8, 2]).with_output_activation(Activation::Tanh);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 21).unwrap();
        let x = fx32_batch(7, 5);
        let dl = Matrix::<f64>::from_fn(7, 2, |b, i| ((b + i * 3) % 5) as f64 * 0.2 - 0.4)
            .cast::<Fx32>();

        // Batched path.
        let bt = mlp.forward_batch_trace(&x).unwrap();
        let mut batched = MlpGrads::zeros_like(&mlp);
        let input_err_b = mlp.backward_batch(&bt, &dl, &mut batched).unwrap();

        // Per-sample reference, ascending sample order.
        let mut looped = MlpGrads::zeros_like(&mlp);
        for b in 0..x.rows() {
            let t = mlp.forward_trace(x.row(b)).unwrap();
            let err = mlp.backward(&t, dl.row(b), &mut looped).unwrap();
            assert_eq!(input_err_b.row(b), err.as_slice(), "input grad row {b}");
        }
        assert_eq!(batched.w, looped.w, "weight gradients must be bit-exact");
        assert_eq!(batched.b, looped.b, "bias gradients must be bit-exact");
    }

    #[test]
    fn batched_qat_calibration_and_quantization_match_per_sample() {
        let cfg = MlpConfig::new(vec![4, 10, 2]).with_output_activation(Activation::Tanh);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 9).unwrap();
        let x = fx32_batch(8, 4);

        let mut qat_batched = QatRuntime::new(mlp.num_layers() + 1, 8);
        let mut qat_looped = qat_batched.clone();

        mlp.forward_batch_qat(&x, &mut qat_batched).unwrap();
        for b in 0..x.rows() {
            mlp.forward_qat(x.row(b), &mut qat_looped).unwrap();
        }
        for p in 0..qat_batched.num_points() {
            assert_eq!(
                qat_batched.monitor(p).range(),
                qat_looped.monitor(p).range(),
                "point {p} range"
            );
            assert_eq!(
                qat_batched.monitor(p).count(),
                qat_looped.monitor(p).count(),
                "point {p} count"
            );
        }

        qat_batched.freeze().unwrap();
        qat_looped.freeze().unwrap();
        let yb = mlp.forward_batch_qat(&x, &mut qat_batched).unwrap().output;
        for b in 0..x.rows() {
            let y = mlp.forward_qat(x.row(b), &mut qat_looped).unwrap().output;
            assert_eq!(yb.row(b), y.as_slice(), "quantized row {b}");
        }

        // The frozen (read-only) variant agrees too.
        let yf = mlp
            .forward_batch_qat_frozen(&x, &qat_batched)
            .unwrap()
            .output;
        assert_eq!(yf, yb);
    }

    #[test]
    fn batch_shape_errors_are_reported() {
        let mlp = Mlp::<f64>::new_random(&tiny_cfg(), 1).unwrap();
        let bad = Matrix::<f64>::zeros(4, 2);
        assert!(mlp.forward_batch(&bad).is_err());
        let x = Matrix::<f64>::zeros(4, 3);
        let t = mlp.forward_batch_trace(&x).unwrap();
        let bad_dl = Matrix::<f64>::zeros(3, 2);
        let mut grads = MlpGrads::zeros_like(&mlp);
        assert!(mlp.backward_batch(&t, &bad_dl, &mut grads).is_err());
    }

    #[test]
    fn pool_parallel_batch_passes_bit_exact_with_sequential() {
        use fixar_pool::Parallelism;
        let cfg = MlpConfig::new(vec![5, 14, 8, 2]).with_output_activation(Activation::Tanh);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 21).unwrap();
        let x = fx32_batch(11, 5);
        let dl = Matrix::<f64>::from_fn(11, 2, |b, i| ((b + i * 3) % 5) as f64 * 0.2 - 0.4)
            .cast::<Fx32>();

        // Sequential reference.
        let trace_seq = mlp.forward_batch_trace(&x).unwrap();
        let mut grads_seq = MlpGrads::zeros_like(&mlp);
        let err_seq = mlp.backward_batch(&trace_seq, &dl, &mut grads_seq).unwrap();

        for workers in [1, 2, 3, 4, 8] {
            let par = Parallelism::with_workers(workers);
            let trace = mlp.forward_batch_trace_par(&x, &par).unwrap();
            assert_eq!(trace.output, trace_seq.output, "{workers} workers");
            let mut grads = MlpGrads::zeros_like(&mlp);
            let err = mlp
                .backward_batch_par(&trace, &dl, &mut grads, &par)
                .unwrap();
            assert_eq!(err, err_seq, "{workers} workers input grads");
            assert_eq!(grads.w, grads_seq.w, "{workers} workers weight grads");
            assert_eq!(grads.b, grads_seq.b, "{workers} workers bias grads");
            assert_eq!(mlp.forward_batch_par(&x, &par).unwrap(), trace_seq.output);
        }

        // QAT: calibration counts and frozen quantized outputs agree too.
        let par = Parallelism::with_workers(4);
        let mut qat_seq = QatRuntime::new(mlp.num_layers() + 1, 8);
        let mut qat_par = qat_seq.clone();
        mlp.forward_batch_qat(&x, &mut qat_seq).unwrap();
        mlp.forward_batch_qat_par(&x, &mut qat_par, &par).unwrap();
        for p in 0..qat_seq.num_points() {
            assert_eq!(qat_seq.monitor(p).range(), qat_par.monitor(p).range());
        }
        qat_seq.freeze().unwrap();
        qat_par.freeze().unwrap();
        let y_seq = mlp.forward_batch_qat_frozen(&x, &qat_seq).unwrap().output;
        let y_par = mlp
            .forward_batch_qat_frozen_par(&x, &qat_par, &par)
            .unwrap()
            .output;
        assert_eq!(y_seq, y_par);
    }

    #[test]
    fn grads_reset_and_scale() {
        let mlp = Mlp::<f64>::new_random(&tiny_cfg(), 3).unwrap();
        let mut grads = MlpGrads::zeros_like(&mlp);
        let trace = mlp.forward_trace(&[1.0, 1.0, 1.0]).unwrap();
        mlp.backward(&trace, &[1.0, 1.0], &mut grads).unwrap();
        let norm_before = grads.w[0].max_abs();
        assert!(norm_before > 0.0);
        grads.scale(0.5);
        assert!((grads.w[0].max_abs() - norm_before * 0.5).abs() < 1e-12);
        grads.reset();
        assert_eq!(grads.w[0].max_abs(), 0.0);
    }
}
