//! Multilayer perceptron with back-propagation and QAT hooks.

use std::sync::OnceLock;

use fixar_fixed::Scalar;
use fixar_pool::Parallelism;
use fixar_tensor::{vector, Matrix, WeightPack};

use crate::activation::Activation;
use crate::error::NnError;
use crate::init::{seeded_rng, WeightInit};
use crate::qat::QatRuntime;

/// Configuration of a fully-connected network.
///
/// `layer_sizes` includes the input dimension, e.g. the paper's actor for
/// HalfCheetah is `vec![17, 400, 300, 6]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Layer widths, input first. Must have at least two entries.
    pub layer_sizes: Vec<usize>,
    /// Activation after every hidden layer (paper: ReLU).
    pub hidden_activation: Activation,
    /// Activation after the output layer (actor: tanh, critic: identity).
    pub output_activation: Activation,
    /// Initialization for hidden layers.
    pub hidden_init: WeightInit,
    /// Initialization for the output layer (DDPG: small uniform).
    pub output_init: WeightInit,
}

impl MlpConfig {
    /// Creates a configuration with the paper's defaults: ReLU hidden
    /// layers, identity output, Xavier hidden init, ±3e-3 output init.
    pub fn new(layer_sizes: Vec<usize>) -> Self {
        Self {
            layer_sizes,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Identity,
            hidden_init: WeightInit::XavierUniform,
            output_init: WeightInit::Uniform(3e-3),
        }
    }

    /// Sets the output activation (builder style).
    pub fn with_output_activation(mut self, act: Activation) -> Self {
        self.output_activation = act;
        self
    }

    /// Sets the hidden activation (builder style).
    pub fn with_hidden_activation(mut self, act: Activation) -> Self {
        self.hidden_activation = act;
        self
    }

    /// Number of weight layers (`layer_sizes.len() - 1`).
    pub fn num_layers(&self) -> usize {
        self.layer_sizes.len().saturating_sub(1)
    }

    fn validate(&self) -> Result<(), NnError> {
        if self.layer_sizes.len() < 2 {
            return Err(NnError::InvalidConfig(
                "layer_sizes needs at least an input and an output width".into(),
            ));
        }
        if self.layer_sizes.contains(&0) {
            return Err(NnError::InvalidConfig("zero-width layer".into()));
        }
        Ok(())
    }
}

/// Per-layer gradients of an [`Mlp`], accumulated across a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpGrads<S> {
    /// Weight gradients, one matrix per layer.
    pub w: Vec<Matrix<S>>,
    /// Bias gradients, one vector per layer.
    pub b: Vec<Vec<S>>,
}

impl<S: Scalar> MlpGrads<S> {
    /// Zero gradients shaped like `mlp`.
    pub fn zeros_like(mlp: &Mlp<S>) -> Self {
        Self {
            w: mlp
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            b: mlp
                .biases
                .iter()
                .map(|b| vec![S::zero(); b.len()])
                .collect(),
        }
    }

    /// Resets all gradients to zero.
    pub fn reset(&mut self) {
        for w in &mut self.w {
            w.fill_zero();
        }
        for b in &mut self.b {
            for v in b {
                *v = S::zero();
            }
        }
    }

    /// Scales all gradients by a constant (e.g. `1/batch`).
    pub fn scale(&mut self, factor: S) {
        for w in &mut self.w {
            w.map_inplace(|v| v * factor);
        }
        for b in &mut self.b {
            vector::scale(factor, b);
        }
    }

    /// Accumulates another gradient buffer into this one — the reduction
    /// of per-core partial gradients into the shared gradient memory.
    ///
    /// # Panics
    ///
    /// Panics if the buffers were shaped from different networks.
    pub fn accumulate(&mut self, other: &MlpGrads<S>) {
        assert_eq!(self.w.len(), other.w.len(), "gradient layer count mismatch");
        for (mine, theirs) in self.w.iter_mut().zip(&other.w) {
            let dst = mine.as_mut_slice();
            for (d, &s) in dst.iter_mut().zip(theirs.as_slice()) {
                *d += s;
            }
        }
        for (mine, theirs) in self.b.iter_mut().zip(&other.b) {
            for (d, &s) in mine.iter_mut().zip(theirs) {
                *d += s;
            }
        }
    }
}

/// Activations captured during a forward pass, needed by back-propagation.
///
/// When the pass ran with quantization enabled, `inputs` holds the
/// *quantized* activations — so the weight-gradient outer products consume
/// exactly what Algorithm 1 prescribes (`Update θ with Qn(A)`).
#[derive(Debug, Clone)]
pub struct ForwardTrace<S> {
    /// Input to each layer: `inputs[0]` is the network input, `inputs[l]`
    /// the (possibly quantized) output of layer `l-1`.
    pub inputs: Vec<Vec<S>>,
    /// Pre-activation `z = W·a + b` of each layer.
    pub pre: Vec<Vec<S>>,
    /// Final network output (after output activation and, under QAT,
    /// quantization).
    pub output: Vec<S>,
}

/// Activations captured during a **batched** forward pass: the same data
/// as [`ForwardTrace`], with one minibatch sample per matrix row.
///
/// Row `b` of every matrix is bit-identical to the vectors a per-sample
/// [`ForwardTrace`] of sample `b` would hold (see the accumulation-order
/// contract in the `fixar-tensor` crate docs).
#[derive(Debug, Clone)]
pub struct BatchTrace<S> {
    /// Input to each layer: `inputs[0]` is the `(batch, in_dim)` network
    /// input, `inputs[l]` the (possibly quantized) output of layer `l-1`.
    pub inputs: Vec<Matrix<S>>,
    /// Pre-activation `Z = A·Wᵀ + b` of each layer, `(batch, fan_out)`.
    pub pre: Vec<Matrix<S>>,
    /// Final network output, `(batch, out_dim)`.
    pub output: Matrix<S>,
}

impl<S: Scalar> BatchTrace<S> {
    /// Number of samples in the traced minibatch.
    pub fn batch_size(&self) -> usize {
        self.output.rows()
    }
}

/// Fully-connected network, generic over the numeric backend.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Mlp<S> {
    weights: Vec<Matrix<S>>,
    biases: Vec<Vec<S>>,
    hidden_act: Activation,
    output_act: Activation,
    layer_sizes: Vec<usize>,
    /// Lazily built packed (pre-transposed) weight layouts, one per
    /// layer — the cache behind every batched forward/backward MVM.
    /// Invalidated ([`OnceLock::take`]) by [`Mlp::weight_mut`] and
    /// [`Mlp::soft_update_from`]; bias updates don't touch it. Pure
    /// cache: never part of equality, never cloned.
    packs: Vec<OnceLock<WeightPack<S>>>,
}

impl<S: Clone> Clone for Mlp<S> {
    fn clone(&self) -> Self {
        Self {
            weights: self.weights.clone(),
            biases: self.biases.clone(),
            hidden_act: self.hidden_act,
            output_act: self.output_act,
            layer_sizes: self.layer_sizes.clone(),
            // A fresh clone starts with a cold cache rather than deep-
            // copying transposes it may never use (target-network clones
            // are mutated immediately anyway).
            packs: fresh_packs(self.weights.len()),
        }
    }
}

impl<S: PartialEq> PartialEq for Mlp<S> {
    fn eq(&self, other: &Self) -> bool {
        self.weights == other.weights
            && self.biases == other.biases
            && self.hidden_act == other.hidden_act
            && self.output_act == other.output_act
            && self.layer_sizes == other.layer_sizes
    }
}

fn fresh_packs<S>(n: usize) -> Vec<OnceLock<WeightPack<S>>> {
    (0..n).map(|_| OnceLock::new()).collect()
}

impl<S: Scalar> Mlp<S> {
    /// Creates a network with freshly initialized weights.
    ///
    /// Weights are drawn in `f64` from a deterministic RNG seeded with
    /// `seed`, then converted to `S`; the same seed yields the same
    /// underlying model at every precision.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for malformed configurations.
    pub fn new_random(cfg: &MlpConfig, seed: u64) -> Result<Self, NnError> {
        cfg.validate()?;
        let mut rng = seeded_rng(seed);
        let n = cfg.num_layers();
        let mut weights = Vec::with_capacity(n);
        let mut biases = Vec::with_capacity(n);
        for l in 0..n {
            let (fan_in, fan_out) = (cfg.layer_sizes[l], cfg.layer_sizes[l + 1]);
            let init = if l + 1 == n {
                cfg.output_init
            } else {
                cfg.hidden_init
            };
            let wf = init.sample(fan_in, fan_out, fan_in * fan_out, &mut rng);
            let bf = init.sample(fan_in, fan_out, fan_out, &mut rng);
            let data = wf.into_iter().map(S::from_f64).collect();
            weights
                .push(Matrix::from_vec(fan_out, fan_in, data).expect("init produced sized buffer"));
            biases.push(bf.into_iter().map(S::from_f64).collect());
        }
        Ok(Self {
            packs: fresh_packs(weights.len()),
            weights,
            biases,
            hidden_act: cfg.hidden_activation,
            output_act: cfg.output_activation,
            layer_sizes: cfg.layer_sizes.clone(),
        })
    }

    /// Number of weight layers.
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Layer widths, input first.
    #[inline]
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }

    /// Input dimension.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.layer_sizes[0]
    }

    /// Output dimension.
    #[inline]
    pub fn output_dim(&self) -> usize {
        *self.layer_sizes.last().expect("validated non-empty")
    }

    /// Hidden activation function.
    #[inline]
    pub fn hidden_activation(&self) -> Activation {
        self.hidden_act
    }

    /// Output activation function.
    #[inline]
    pub fn output_activation(&self) -> Activation {
        self.output_act
    }

    /// Weight matrix of layer `l` (rows = fan-out, cols = fan-in).
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_layers()`.
    #[inline]
    pub fn weight(&self, l: usize) -> &Matrix<S> {
        &self.weights[l]
    }

    /// Mutable weight matrix of layer `l` (used by optimizers and the
    /// accelerator write-back path). Invalidates the layer's cached
    /// packed layout — the next batched pass re-packs from the updated
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_layers()`.
    #[inline]
    pub fn weight_mut(&mut self, l: usize) -> &mut Matrix<S> {
        self.packs[l].take();
        &mut self.weights[l]
    }

    /// The cached packed layout of layer `l`, building it on first use
    /// after construction or invalidation.
    #[inline]
    fn pack(&self, l: usize) -> &WeightPack<S> {
        self.packs[l].get_or_init(|| self.weights[l].pack())
    }

    /// Bias vector of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_layers()`.
    #[inline]
    pub fn bias(&self, l: usize) -> &[S] {
        &self.biases[l]
    }

    /// Mutable bias vector of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_layers()`.
    #[inline]
    pub fn bias_mut(&mut self, l: usize) -> &mut [S] {
        &mut self.biases[l]
    }

    /// Total number of parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.weights.iter().map(Matrix::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Model size in bytes at this backend's precision (what the paper
    /// reports as "network size"; 32-bit weights for `Fx32`).
    pub fn model_bytes(&self) -> usize {
        self.param_count() * (S::BITS as usize / 8)
    }

    /// Plain inference without gradient bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.len() != input_dim()`.
    pub fn forward(&self, x: &[S]) -> Result<Vec<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        Ok(self.forward_qat(x, &mut qat)?.output)
    }

    /// Forward pass capturing the trace needed by [`Mlp::backward`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.len() != input_dim()`.
    pub fn forward_trace(&self, x: &[S]) -> Result<ForwardTrace<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        self.forward_qat(x, &mut qat)
    }

    /// Forward pass through the QAT runtime: in `Calibrate` mode every
    /// activation point feeds its [`fixar_fixed::RangeMonitor`]; in
    /// `Quantize` mode activations are projected onto the n-bit grid
    /// before being stored and propagated.
    ///
    /// Quantization point `0` is the network input; point `l+1` is the
    /// post-activation output of layer `l`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] on input-size mismatch and
    /// [`NnError::InvalidConfig`] if `qat` was built for a different
    /// number of points.
    pub fn forward_qat(&self, x: &[S], qat: &mut QatRuntime) -> Result<ForwardTrace<S>, NnError> {
        self.forward_with(x, qat.num_points(), |point, xs| qat.process(point, xs))
    }

    /// Forward pass against an immutable QAT runtime: frozen quantizers
    /// apply but no ranges are recorded. This is the thread-parallel
    /// training path — workers share `&self` and `&QatRuntime`,
    /// calibrating (if needed) into per-worker clones merged afterwards
    /// with [`QatRuntime::merge_from`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::forward_qat`].
    pub fn forward_qat_frozen(
        &self,
        x: &[S],
        qat: &QatRuntime,
    ) -> Result<ForwardTrace<S>, NnError> {
        self.forward_with(x, qat.num_points(), |point, xs| qat.apply(point, xs))
    }

    fn forward_with(
        &self,
        x: &[S],
        qat_points: usize,
        mut process: impl FnMut(usize, &mut [S]),
    ) -> Result<ForwardTrace<S>, NnError> {
        if x.len() != self.input_dim() {
            return Err(NnError::Shape(fixar_tensor::ShapeError::new(
                "mlp input",
                (self.input_dim(), 1),
                (x.len(), 1),
            )));
        }
        if qat_points != self.num_layers() + 1 {
            return Err(NnError::InvalidConfig(format!(
                "qat runtime has {} points, network needs {}",
                qat_points,
                self.num_layers() + 1
            )));
        }
        let n = self.num_layers();
        let mut inputs = Vec::with_capacity(n);
        let mut pre = Vec::with_capacity(n);

        let mut a = x.to_vec();
        process(0, &mut a);
        for l in 0..n {
            let mut z = self.weights[l].gemv_alloc(&a)?;
            for (zi, &bi) in z.iter_mut().zip(&self.biases[l]) {
                *zi += bi;
            }
            let act = if l + 1 == n {
                self.output_act
            } else {
                self.hidden_act
            };
            let mut y = z.clone();
            act.apply_slice(&mut y);
            process(l + 1, &mut y);
            inputs.push(a);
            pre.push(z);
            a = y;
        }
        Ok(ForwardTrace {
            inputs,
            pre,
            output: a,
        })
    }

    /// Batched inference: one minibatch sample per row of `x`, no
    /// gradient bookkeeping. Row `b` of the result is bit-identical to
    /// `forward(x.row(b))`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.cols() != input_dim()`.
    pub fn forward_batch(&self, x: &Matrix<S>) -> Result<Matrix<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        Ok(self.forward_batch_qat(x, &mut qat)?.output)
    }

    /// Pool-parallel [`Mlp::forward_batch`]: every layer's batched MVM
    /// shards across the workers of `par` (see
    /// [`Matrix::gemv_batch_par`]); bit-identical to the sequential
    /// batched pass — and hence to the per-sample pass — at every
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.cols() != input_dim()`.
    pub fn forward_batch_par(
        &self,
        x: &Matrix<S>,
        par: &Parallelism,
    ) -> Result<Matrix<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        Ok(self.forward_batch_qat_par(x, &mut qat, par)?.output)
    }

    /// Batched forward pass capturing the trace needed by
    /// [`Mlp::backward_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.cols() != input_dim()`.
    pub fn forward_batch_trace(&self, x: &Matrix<S>) -> Result<BatchTrace<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        self.forward_batch_qat(x, &mut qat)
    }

    /// Pool-parallel [`Mlp::forward_batch_trace`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `x.cols() != input_dim()`.
    pub fn forward_batch_trace_par(
        &self,
        x: &Matrix<S>,
        par: &Parallelism,
    ) -> Result<BatchTrace<S>, NnError> {
        let mut qat = QatRuntime::disabled(self.num_layers() + 1);
        self.forward_batch_qat_par(x, &mut qat, par)
    }

    /// Batched forward pass through the QAT runtime: every quantization
    /// point observes (or quantizes) the **whole activation matrix** of
    /// the minibatch in one call, instead of one sample vector at a time.
    /// Range monitors see exactly the same values as `batch` per-sample
    /// passes (min/max/count are order-independent), and frozen
    /// quantizers apply elementwise, so the batched pass stays
    /// bit-exact with the per-sample path under every QAT mode.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] on input-width mismatch and
    /// [`NnError::InvalidConfig`] if `qat` was built for a different
    /// number of points.
    pub fn forward_batch_qat(
        &self,
        x: &Matrix<S>,
        qat: &mut QatRuntime,
    ) -> Result<BatchTrace<S>, NnError> {
        self.forward_batch_with(
            x,
            qat.num_points(),
            &Parallelism::sequential(),
            |point, xs| qat.process(point, xs),
        )
    }

    /// Pool-parallel [`Mlp::forward_batch_qat`]: the batched MVMs shard
    /// across the pool; QAT observation/quantization still processes the
    /// whole activation matrix on the calling thread (monitors are
    /// order-independent, frozen quantizers elementwise), so the trace
    /// is bit-identical to the sequential batched pass under every QAT
    /// mode.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::forward_batch_qat`].
    pub fn forward_batch_qat_par(
        &self,
        x: &Matrix<S>,
        qat: &mut QatRuntime,
        par: &Parallelism,
    ) -> Result<BatchTrace<S>, NnError> {
        self.forward_batch_with(x, qat.num_points(), par, |point, xs| qat.process(point, xs))
    }

    /// Batched forward pass against an immutable QAT runtime (frozen
    /// quantizers apply, nothing is recorded) — the batched analogue of
    /// [`Mlp::forward_qat_frozen`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::forward_batch_qat`].
    pub fn forward_batch_qat_frozen(
        &self,
        x: &Matrix<S>,
        qat: &QatRuntime,
    ) -> Result<BatchTrace<S>, NnError> {
        self.forward_batch_with(
            x,
            qat.num_points(),
            &Parallelism::sequential(),
            |point, xs| qat.apply(point, xs),
        )
    }

    /// Pool-parallel [`Mlp::forward_batch_qat_frozen`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::forward_batch_qat`].
    pub fn forward_batch_qat_frozen_par(
        &self,
        x: &Matrix<S>,
        qat: &QatRuntime,
        par: &Parallelism,
    ) -> Result<BatchTrace<S>, NnError> {
        self.forward_batch_with(x, qat.num_points(), par, |point, xs| qat.apply(point, xs))
    }

    fn forward_batch_with(
        &self,
        x: &Matrix<S>,
        qat_points: usize,
        par: &Parallelism,
        mut process: impl FnMut(usize, &mut [S]),
    ) -> Result<BatchTrace<S>, NnError> {
        if qat_points != self.num_layers() + 1 {
            return Err(NnError::InvalidConfig(format!(
                "qat runtime has {} points, network needs {}",
                qat_points,
                self.num_layers() + 1
            )));
        }
        // One pass through the shared fused driver: the single-network
        // forward is the one-element case of the fused multi-network
        // forward, so the two cannot drift apart.
        let mut p: &mut dyn FnMut(usize, &mut [S]) = &mut process;
        let mut traces =
            forward_batch_fused_driver(&[self], &[x], std::slice::from_mut(&mut p), par)?;
        Ok(traces.pop().expect("one pass in, one trace out"))
    }

    /// Back-propagates a minibatch of output gradients (`dl_dout`, one
    /// sample per row) through the batched trace, accumulating parameter
    /// gradients into `grads` and returning the `(batch, input_dim)`
    /// matrix of input gradients.
    ///
    /// Gradient accumulation across the batch runs in **ascending sample
    /// order** (the documented reduction order of the gradient memory),
    /// so the accumulated `grads` are bit-identical to calling
    /// [`Mlp::backward`] on each sample's trace in row order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `dl_dout` is not
    /// `(batch, output_dim())` or `grads` was shaped for another network.
    pub fn backward_batch(
        &self,
        trace: &BatchTrace<S>,
        dl_dout: &Matrix<S>,
        grads: &mut MlpGrads<S>,
    ) -> Result<Matrix<S>, NnError> {
        self.backward_batch_with(trace, dl_dout, grads, &Parallelism::sequential())
    }

    /// Pool-parallel [`Mlp::backward_batch`]: per layer, the transposed
    /// error MVM shards across batch rows and the weight-gradient
    /// accumulation shards across weight rows (see
    /// [`Matrix::gemv_t_batch_par`] / [`Matrix::add_outer_batch_par`]),
    /// so the accumulated gradients stay bit-identical to the
    /// sequential batched backward — and to the per-sample backward in
    /// ascending sample order — at every worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mlp::backward_batch`].
    pub fn backward_batch_par(
        &self,
        trace: &BatchTrace<S>,
        dl_dout: &Matrix<S>,
        grads: &mut MlpGrads<S>,
        par: &Parallelism,
    ) -> Result<Matrix<S>, NnError> {
        self.backward_batch_with(trace, dl_dout, grads, par)
    }

    fn backward_batch_with(
        &self,
        trace: &BatchTrace<S>,
        dl_dout: &Matrix<S>,
        grads: &mut MlpGrads<S>,
        par: &Parallelism,
    ) -> Result<Matrix<S>, NnError> {
        // One pass through the shared fused driver (see
        // [`backward_batch_fused`]): even a single network benefits —
        // each layer's gradient outer product and error MVM now share
        // one fused scope (one join) instead of opening two.
        let mut passes = [FusedBackward {
            mlp: self,
            trace,
            dl_dout,
            grads,
        }];
        let mut outs = backward_batch_fused(&mut passes, par)?;
        Ok(outs.pop().expect("one pass in, one input gradient out"))
    }

    /// Back-propagates `dl_dout` (∂loss/∂output) through the trace,
    /// accumulating parameter gradients into `grads` and returning
    /// ∂loss/∂input (the path by which the critic "leads the BP and WU of
    /// the actor network").
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `dl_dout.len() != output_dim()` or
    /// `grads` was not shaped by [`MlpGrads::zeros_like`] on this network.
    pub fn backward(
        &self,
        trace: &ForwardTrace<S>,
        dl_dout: &[S],
        grads: &mut MlpGrads<S>,
    ) -> Result<Vec<S>, NnError> {
        let n = self.num_layers();
        if dl_dout.len() != self.output_dim() {
            return Err(NnError::Shape(fixar_tensor::ShapeError::new(
                "mlp backward",
                (self.output_dim(), 1),
                (dl_dout.len(), 1),
            )));
        }
        if grads.w.len() != n {
            return Err(NnError::InvalidConfig(
                "gradient buffer has wrong layer count".into(),
            ));
        }
        // Output-layer delta: dL/dz = dL/dy ⊙ f'(z).
        let mut delta: Vec<S> = dl_dout
            .iter()
            .zip(trace.pre[n - 1].iter().zip(&trace.output))
            .map(|(&g, (&z, &y))| g * self.output_act.derivative(z, y))
            .collect();

        let mut input_err = Vec::new();
        for l in (0..n).rev() {
            grads.w[l].add_outer(&delta, &trace.inputs[l])?;
            for (gb, &d) in grads.b[l].iter_mut().zip(&delta) {
                *gb += d;
            }
            let err = self.weights[l].gemv_t_alloc(&delta)?;
            if l > 0 {
                delta = err
                    .iter()
                    .zip(trace.pre[l - 1].iter().zip(&trace.inputs[l]))
                    .map(|(&e, (&z, &y))| e * self.hidden_act.derivative(z, y))
                    .collect();
            } else {
                input_err = err;
            }
        }
        Ok(input_err)
    }

    /// Polyak/soft update `θ ← τ·θ_src + (1−τ)·θ` used for DDPG target
    /// networks, computed in the backend arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the architectures differ.
    pub fn soft_update_from(&mut self, src: &Mlp<S>, tau: f64) -> Result<(), NnError> {
        if self.layer_sizes != src.layer_sizes {
            return Err(NnError::InvalidConfig(
                "soft update requires identical architectures".into(),
            ));
        }
        let t = S::from_f64(tau);
        for p in &mut self.packs {
            p.take();
        }
        for (w, ws) in self.weights.iter_mut().zip(&src.weights) {
            let dst = w.as_mut_slice();
            for (d, &s) in dst.iter_mut().zip(ws.as_slice()) {
                *d = *d + t * (s - *d);
            }
        }
        for (b, bs) in self.biases.iter_mut().zip(&src.biases) {
            for (d, &s) in b.iter_mut().zip(bs) {
                *d = *d + t * (s - *d);
            }
        }
        Ok(())
    }

    /// Converts the model to another backend through `f64` (used when the
    /// dynamic-fixed mode hands a pre-trained full-precision model to the
    /// quantized phase, and to build bit-identical accelerator images).
    pub fn cast<T: Scalar>(&self) -> Mlp<T> {
        Mlp {
            packs: fresh_packs(self.weights.len()),
            weights: self.weights.iter().map(Matrix::cast).collect(),
            biases: self
                .biases
                .iter()
                .map(|b| b.iter().map(|v| T::from_f64(v.to_f64())).collect())
                .collect(),
            hidden_act: self.hidden_act,
            output_act: self.output_act,
            layer_sizes: self.layer_sizes.clone(),
        }
    }
}

// --- fused multi-network passes --------------------------------------------
//
// Independent networks fed independent inputs (TD3's twin critics, a
// target actor alongside an online critic) used to run one batched pass
// after another, each layer opening its own pool scope. The fused
// drivers below run such passes **layer-locked**: per layer step, every
// still-active pass submits its kernels into ONE fused scope
// (`Parallelism::fused`) and they all share a single barrier join —
// cutting the joins per phase from `passes × layers` to `layers` while
// keeping every worker busy on the union of the kernels. Host-side work
// (bias broadcast, activation, QAT observation, bias gradients) stays
// on the calling thread in ascending pass order. Per-element reduction
// chains are untouched and distinct passes write disjoint outputs, so
// fused results are **bit-identical** to running the passes back to
// back — sequentially or pool-parallel — at every worker count.

/// A per-pass activation hook `(point, values)` — QAT observation,
/// quantization, or a no-op — applied on the calling thread between
/// fused layer steps.
type ProcessHook<'a, S> = &'a mut dyn FnMut(usize, &mut [S]);

/// One independent batched QAT forward pass in a fused group: the
/// network, its `(batch, input_dim)` input, and the QAT runtime
/// observing (or quantizing) its activations. See
/// [`forward_batch_qat_fused`].
pub struct FusedForward<'a, S: Scalar> {
    /// Network to run.
    pub mlp: &'a Mlp<S>,
    /// `(batch, input_dim)` input matrix.
    pub input: &'a Matrix<S>,
    /// QAT runtime for this pass (disabled runtimes are fine).
    pub qat: &'a mut QatRuntime,
}

/// Runs several **independent** batched QAT forward passes layer-locked
/// through fused scopes: one join per layer step for the whole group.
/// Element `i` of the result is bit-identical to
/// `passes[i].mlp.forward_batch_qat_par(passes[i].input, passes[i].qat, par)`
/// run on its own — in every backend, at every worker count (QAT range
/// monitors are order-independent, so observing two passes interleaved
/// leaves each runtime exactly as running them apart would).
///
/// Passes may have different depths; a shallower pass simply stops
/// contributing kernels once its layers are exhausted.
///
/// # Errors
///
/// Returns [`NnError::Shape`] on input-width mismatch,
/// [`NnError::InvalidConfig`] if a QAT runtime was built for a
/// different point count, and [`NnError::Pool`] if a fused kernel
/// panicked (contained per task; sibling kernels complete and the pool
/// survives).
pub fn forward_batch_qat_fused<S: Scalar>(
    passes: &mut [FusedForward<'_, S>],
    par: &Parallelism,
) -> Result<Vec<BatchTrace<S>>, NnError> {
    for p in passes.iter() {
        if p.qat.num_points() != p.mlp.num_layers() + 1 {
            return Err(NnError::InvalidConfig(format!(
                "qat runtime has {} points, network needs {}",
                p.qat.num_points(),
                p.mlp.num_layers() + 1
            )));
        }
    }
    let mut nets = Vec::with_capacity(passes.len());
    let mut inputs = Vec::with_capacity(passes.len());
    let mut runtimes: Vec<&mut QatRuntime> = Vec::with_capacity(passes.len());
    for p in passes.iter_mut() {
        nets.push(p.mlp);
        inputs.push(p.input);
        runtimes.push(&mut *p.qat);
    }
    let mut closures: Vec<_> = runtimes
        .into_iter()
        .map(|qat| move |point: usize, xs: &mut [S]| qat.process(point, xs))
        .collect();
    let mut processes: Vec<ProcessHook<'_, S>> = closures
        .iter_mut()
        .map(|c| c as ProcessHook<'_, S>)
        .collect();
    forward_batch_fused_driver(&nets, &inputs, &mut processes, par)
}

/// [`forward_batch_qat_fused`] without QAT bookkeeping, returning full
/// traces — the fused analogue of [`Mlp::forward_batch_trace_par`] for
/// a group of independent networks (e.g. both TD3 critics on the same
/// `(state ‖ action)` batch before their fused backward).
///
/// # Errors
///
/// Returns [`NnError::Shape`] on input-width mismatch and
/// [`NnError::Pool`] on a contained worker panic.
pub fn forward_batch_trace_fused<S: Scalar>(
    nets: &[&Mlp<S>],
    inputs: &[&Matrix<S>],
    par: &Parallelism,
) -> Result<Vec<BatchTrace<S>>, NnError> {
    let mut noops: Vec<_> = (0..nets.len())
        .map(|_| |_: usize, _: &mut [S]| {})
        .collect();
    let mut processes: Vec<ProcessHook<'_, S>> =
        noops.iter_mut().map(|c| c as ProcessHook<'_, S>).collect();
    forward_batch_fused_driver(nets, inputs, &mut processes, par)
}

/// [`forward_batch_trace_fused`] keeping only the outputs — the fused
/// analogue of [`Mlp::forward_batch_par`] for a group of independent
/// networks (e.g. TD3's twin *target* critics on the smoothed target
/// action batch).
///
/// # Errors
///
/// Returns [`NnError::Shape`] on input-width mismatch and
/// [`NnError::Pool`] on a contained worker panic.
pub fn forward_batch_fused<S: Scalar>(
    nets: &[&Mlp<S>],
    inputs: &[&Matrix<S>],
    par: &Parallelism,
) -> Result<Vec<Matrix<S>>, NnError> {
    Ok(forward_batch_trace_fused(nets, inputs, par)?
        .into_iter()
        .map(|t| t.output)
        .collect())
}

/// The layer-locked fused forward engine: per layer step, every active
/// pass submits its batched MVM into one fused scope; bias broadcast,
/// activation, and the per-pass `process` hook run on the calling
/// thread in ascending pass order after the join.
fn forward_batch_fused_driver<S: Scalar>(
    nets: &[&Mlp<S>],
    inputs: &[&Matrix<S>],
    processes: &mut [ProcessHook<'_, S>],
    par: &Parallelism,
) -> Result<Vec<BatchTrace<S>>, NnError> {
    assert_eq!(nets.len(), inputs.len(), "one input per fused network");
    assert_eq!(nets.len(), processes.len(), "one process hook per pass");
    for (m, x) in nets.iter().zip(inputs) {
        if x.cols() != m.input_dim() {
            return Err(NnError::Shape(fixar_tensor::ShapeError::new(
                "mlp batch input",
                (x.rows(), m.input_dim()),
                x.shape(),
            )));
        }
    }
    let k = nets.len();
    let mut acts: Vec<Matrix<S>> = inputs.iter().map(|x| (*x).clone()).collect();
    for (a, process) in acts.iter_mut().zip(processes.iter_mut()) {
        process(0, a.as_mut_slice());
    }
    let mut input_traces: Vec<Vec<Matrix<S>>> = nets
        .iter()
        .map(|m| Vec::with_capacity(m.num_layers()))
        .collect();
    let mut pre_traces: Vec<Vec<Matrix<S>>> = nets
        .iter()
        .map(|m| Vec::with_capacity(m.num_layers()))
        .collect();
    let steps = nets.iter().map(|m| m.num_layers()).max().unwrap_or(0);
    for l in 0..steps {
        // Allocate this step's pre-activation outputs up front: fused
        // kernels write into caller-owned buffers that outlive the
        // scope.
        let mut zs: Vec<Option<Matrix<S>>> = nets
            .iter()
            .zip(&acts)
            .map(|(m, a)| {
                (l < m.num_layers()).then(|| Matrix::zeros(a.rows(), m.weights[l].rows()))
            })
            .collect();
        par.fused(|ks| -> Result<(), fixar_tensor::ShapeError> {
            for ((m, a), z) in nets.iter().zip(&acts).zip(zs.iter_mut()) {
                if let Some(z) = z.as_mut() {
                    // The cached pack replaces the per-call transpose
                    // the unpacked kernel would rebuild every batch.
                    m.pack(l).gemv_batch_par_in(a, z, ks)?;
                }
            }
            Ok(())
        })??;
        for i in 0..k {
            let Some(mut z) = zs[i].take() else { continue };
            let n_i = nets[i].num_layers();
            z.add_row_broadcast(&nets[i].biases[l])?;
            let act = if l + 1 == n_i {
                nets[i].output_act
            } else {
                nets[i].hidden_act
            };
            let mut y = z.clone();
            act.apply_slice(y.as_mut_slice());
            processes[i](l + 1, y.as_mut_slice());
            input_traces[i].push(core::mem::replace(&mut acts[i], y));
            pre_traces[i].push(z);
        }
    }
    let mut traces = Vec::with_capacity(k);
    for ((inputs, pre), output) in input_traces.into_iter().zip(pre_traces).zip(acts) {
        traces.push(BatchTrace {
            inputs,
            pre,
            output,
        });
    }
    Ok(traces)
}

/// One independent batched backward pass in a fused group: the network,
/// its forward trace, the output gradient, and the gradient buffer it
/// accumulates into. See [`backward_batch_fused`].
pub struct FusedBackward<'a, S: Scalar> {
    /// Network to back-propagate through.
    pub mlp: &'a Mlp<S>,
    /// Trace captured by a batched forward of `mlp`.
    pub trace: &'a BatchTrace<S>,
    /// `(batch, output_dim)` loss gradient w.r.t. the output.
    pub dl_dout: &'a Matrix<S>,
    /// Gradient buffer shaped by [`MlpGrads::zeros_like`] on `mlp`.
    pub grads: &'a mut MlpGrads<S>,
}

/// Runs several **independent** batched backward passes layer-locked
/// through fused scopes, returning each pass's `(batch, input_dim)`
/// input gradient. Per layer step one fused scope hosts, for every
/// active pass, its gradient outer product (weight-row shards) *and*
/// its error MVM (batch-row shards) — for TD3's twin critics that is
/// four kernels under a single join where the unfused path paid four.
/// Bias gradients accumulate on the calling thread (ascending sample
/// order, as documented) while the shards run.
///
/// Element `i` of the result — and `passes[i].grads` — is bit-identical
/// to `passes[i].mlp.backward_batch_par(..)` run on its own, in every
/// backend, at every worker count.
///
/// # Errors
///
/// Returns [`NnError::Shape`] if a `dl_dout` is not
/// `(batch, output_dim)`, [`NnError::InvalidConfig`] for a gradient
/// buffer shaped on another network, and [`NnError::Pool`] if a fused
/// kernel panicked (contained; siblings complete, the pool survives).
pub fn backward_batch_fused<S: Scalar>(
    passes: &mut [FusedBackward<'_, S>],
    par: &Parallelism,
) -> Result<Vec<Matrix<S>>, NnError> {
    for p in passes.iter() {
        let n = p.mlp.num_layers();
        if p.dl_dout.shape() != (p.trace.batch_size(), p.mlp.output_dim()) {
            return Err(NnError::Shape(fixar_tensor::ShapeError::new(
                "mlp batch backward",
                (p.trace.batch_size(), p.mlp.output_dim()),
                p.dl_dout.shape(),
            )));
        }
        if p.grads.w.len() != n {
            return Err(NnError::InvalidConfig(
                "gradient buffer has wrong layer count".into(),
            ));
        }
    }
    let k = passes.len();
    // Output-layer deltas: dL/dZ = dL/dY ⊙ f'(Z), elementwise per pass.
    let mut deltas: Vec<Matrix<S>> = passes
        .iter()
        .map(|p| {
            let n = p.mlp.num_layers();
            let mut delta = p.dl_dout.clone();
            for ((d, &z), &y) in delta
                .as_mut_slice()
                .iter_mut()
                .zip(p.trace.pre[n - 1].as_slice())
                .zip(p.trace.output.as_slice())
            {
                *d *= p.mlp.output_act.derivative(z, y);
            }
            delta
        })
        .collect();

    let steps = passes.iter().map(|p| p.mlp.num_layers()).max().unwrap_or(0);
    let mut input_grads: Vec<Option<Matrix<S>>> = (0..k).map(|_| None).collect();
    // Step `s` processes layer `n_i - 1 - s` of every pass deep enough.
    for s in 0..steps {
        let mut errs: Vec<Option<Matrix<S>>> = passes
            .iter()
            .map(|p| {
                let n = p.mlp.num_layers();
                (s < n)
                    .then(|| Matrix::zeros(p.trace.batch_size(), p.mlp.weights[n - 1 - s].cols()))
            })
            .collect();
        par.fused(|ks| -> Result<(), fixar_tensor::ShapeError> {
            for ((i, p), err_slot) in passes.iter_mut().enumerate().zip(errs.iter_mut()) {
                let n = p.mlp.num_layers();
                if s >= n {
                    continue;
                }
                let l = n - 1 - s;
                let delta = &deltas[i];
                let MlpGrads { w, b } = &mut *p.grads;
                w[l].add_outer_batch_par_in(delta, &p.trace.inputs[l], ks)?;
                let err = err_slot.as_mut().expect("active pass has an err buffer");
                p.mlp.pack(l).gemv_t_batch_par_in(delta, err, ks)?;
                // Bias gradients: ascending sample order on the calling
                // thread, overlapping the queued shards (disjoint from
                // both kernel outputs).
                for bi in 0..delta.rows() {
                    for (gb, &d) in b[l].iter_mut().zip(delta.row(bi)) {
                        *gb += d;
                    }
                }
            }
            Ok(())
        })??;
        for (i, p) in passes.iter().enumerate() {
            let n = p.mlp.num_layers();
            if s >= n {
                continue;
            }
            let l = n - 1 - s;
            let mut err = errs[i].take().expect("active pass has an err buffer");
            if l > 0 {
                for ((d, &z), &y) in err
                    .as_mut_slice()
                    .iter_mut()
                    .zip(p.trace.pre[l - 1].as_slice())
                    .zip(p.trace.inputs[l].as_slice())
                {
                    *d *= p.mlp.hidden_act.derivative(z, y);
                }
                deltas[i] = err;
            } else {
                input_grads[i] = Some(err);
            }
        }
    }
    Ok(input_grads
        .into_iter()
        .map(|g| g.expect("every validated network has at least one layer"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;

    fn tiny_cfg() -> MlpConfig {
        MlpConfig::new(vec![3, 5, 2]).with_output_activation(Activation::Tanh)
    }

    #[test]
    fn construction_validates_config() {
        assert!(Mlp::<f64>::new_random(&MlpConfig::new(vec![3]), 0).is_err());
        assert!(Mlp::<f64>::new_random(&MlpConfig::new(vec![3, 0, 2]), 0).is_err());
        assert!(Mlp::<f64>::new_random(&tiny_cfg(), 0).is_ok());
    }

    #[test]
    fn same_seed_same_model_across_precisions() {
        let f = Mlp::<f64>::new_random(&tiny_cfg(), 123).unwrap();
        let q = Mlp::<Fx32>::new_random(&tiny_cfg(), 123).unwrap();
        for l in 0..f.num_layers() {
            for (a, b) in f.weight(l).as_slice().iter().zip(q.weight(l).as_slice()) {
                assert!((a - b.to_f64()).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn forward_shape_checked() {
        let mlp = Mlp::<f64>::new_random(&tiny_cfg(), 1).unwrap();
        assert!(mlp.forward(&[1.0, 2.0]).is_err());
        assert_eq!(mlp.forward(&[1.0, 2.0, 3.0]).unwrap().len(), 2);
    }

    #[test]
    fn tanh_output_is_bounded() {
        let mlp = Mlp::<f64>::new_random(&tiny_cfg(), 5).unwrap();
        let y = mlp.forward(&[10.0, -10.0, 10.0]).unwrap();
        assert!(y.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let cfg = MlpConfig::new(vec![4, 6, 3]).with_output_activation(Activation::Tanh);
        let mlp = Mlp::<f64>::new_random(&cfg, 9).unwrap();
        let x = [0.3, -0.7, 0.5, 0.1];
        // Loss: L = ½ Σ y_k², so dL/dy = y.
        let trace = mlp.forward_trace(&x).unwrap();
        let dl_dout = trace.output.clone();
        let mut grads = MlpGrads::zeros_like(&mlp);
        let input_err = mlp.backward(&trace, &dl_dout, &mut grads).unwrap();

        let loss = |m: &Mlp<f64>| -> f64 {
            let y = m.forward(&x).unwrap();
            0.5 * y.iter().map(|v| v * v).sum::<f64>()
        };
        let eps = 1e-6;
        // Check a sample of weight coordinates in every layer.
        for l in 0..mlp.num_layers() {
            for &(r, c) in &[(0usize, 0usize), (1, 2), (2, 1)] {
                if r >= mlp.weight(l).rows() || c >= mlp.weight(l).cols() {
                    continue;
                }
                let mut plus = mlp.clone();
                plus.weight_mut(l)[(r, c)] += eps;
                let mut minus = mlp.clone();
                minus.weight_mut(l)[(r, c)] -= eps;
                let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                let an = grads.w[l][(r, c)];
                assert!(
                    (fd - an).abs() < 1e-6,
                    "layer {l} w[{r}][{c}]: fd={fd} an={an}"
                );
            }
            // And one bias coordinate.
            let mut plus = mlp.clone();
            plus.bias_mut(l)[0] += eps;
            let mut minus = mlp.clone();
            minus.bias_mut(l)[0] -= eps;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!((fd - grads.b[l][0]).abs() < 1e-6, "layer {l} bias");
        }
        // Input gradient against finite differences too.
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let yp = mlp.forward(&xp).unwrap();
            let ym = mlp.forward(&xm).unwrap();
            let lp = 0.5 * yp.iter().map(|v| v * v).sum::<f64>();
            let lm = 0.5 * ym.iter().map(|v| v * v).sum::<f64>();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - input_err[i]).abs() < 1e-6, "input {i}");
        }
    }

    #[test]
    fn soft_update_moves_toward_source() {
        let mut target = Mlp::<f64>::new_random(&tiny_cfg(), 1).unwrap();
        let online = Mlp::<f64>::new_random(&tiny_cfg(), 2).unwrap();
        let before = target.weight(0)[(0, 0)];
        let src = online.weight(0)[(0, 0)];
        target.soft_update_from(&online, 0.25).unwrap();
        let after = target.weight(0)[(0, 0)];
        assert!((after - (before + 0.25 * (src - before))).abs() < 1e-12);
        // tau = 1 copies exactly.
        target.soft_update_from(&online, 1.0).unwrap();
        assert_eq!(target.weight(0)[(0, 0)], src);
    }

    #[test]
    fn soft_update_rejects_architecture_mismatch() {
        let mut a = Mlp::<f64>::new_random(&tiny_cfg(), 1).unwrap();
        let b = Mlp::<f64>::new_random(&MlpConfig::new(vec![3, 4, 2]), 1).unwrap();
        assert!(a.soft_update_from(&b, 0.1).is_err());
    }

    #[test]
    fn param_count_matches_paper_model() {
        // HalfCheetah actor: 17*400+400 + 400*300+300 + 300*6+6 = 129_306.
        let cfg = MlpConfig::new(vec![17, 400, 300, 6]);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 0).unwrap();
        assert_eq!(mlp.param_count(), 129_306);
        assert_eq!(mlp.model_bytes(), 129_306 * 4);
    }

    #[test]
    fn fixed_point_forward_tracks_float() {
        let cfg = MlpConfig::new(vec![6, 16, 4]).with_output_activation(Activation::Tanh);
        let f = Mlp::<f64>::new_random(&cfg, 33).unwrap();
        let q: Mlp<Fx32> = f.cast();
        let x = [0.2, -0.4, 0.6, -0.8, 1.0, -0.1];
        let xf = f.forward(&x).unwrap();
        let xq = q
            .forward(&x.iter().map(|&v| Fx32::from_f64(v)).collect::<Vec<_>>())
            .unwrap();
        for (a, b) in xf.iter().zip(&xq) {
            assert!(
                (a - b.to_f64()).abs() < 3e-3,
                "float={a} fixed={}",
                b.to_f64()
            );
        }
    }

    /// Deterministic pseudo-random Fx32 batch for a given input width.
    fn fx32_batch(batch: usize, dim: usize) -> Matrix<Fx32> {
        Matrix::<f64>::from_fn(batch, dim, |b, i| {
            (((b * 13 + i * 7) % 17) as f64 - 8.0) * 0.11
        })
        .cast()
    }

    #[test]
    fn forward_batch_bit_exact_with_per_sample_forward() {
        let cfg = MlpConfig::new(vec![6, 16, 9, 4]).with_output_activation(Activation::Tanh);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 77).unwrap();
        let x = fx32_batch(9, 6);
        let y = mlp.forward_batch(&x).unwrap();
        assert_eq!(y.shape(), (9, 4));
        for b in 0..x.rows() {
            assert_eq!(
                y.row(b),
                mlp.forward(x.row(b)).unwrap().as_slice(),
                "row {b}"
            );
        }
    }

    #[test]
    fn weight_updates_invalidate_cached_packs() {
        // The batched paths cache a packed transpose per layer; a stale
        // pack would keep serving the old weights. The per-sample
        // forward never touches the cache, so it is the oracle.
        let cfg = MlpConfig::new(vec![6, 16, 4]).with_output_activation(Activation::Tanh);
        let mut mlp = Mlp::<Fx32>::new_random(&cfg, 31).unwrap();
        let x = fx32_batch(5, 6);
        let before = mlp.forward_batch(&x).unwrap(); // populates the pack cache

        // Direct weight write through `weight_mut`.
        mlp.weight_mut(0)[(0, 0)] = Fx32::from_f64(1.25);
        mlp.weight_mut(1)[(2, 3)] = Fx32::from_f64(-0.75);
        let after = mlp.forward_batch(&x).unwrap();
        assert_ne!(before, after, "weight change must be visible");
        for b in 0..x.rows() {
            assert_eq!(after.row(b), mlp.forward(x.row(b)).unwrap().as_slice());
        }

        // Polyak update path.
        let src = Mlp::<Fx32>::new_random(&cfg, 77).unwrap();
        let warm = mlp.forward_batch(&x).unwrap(); // re-populate the cache
        mlp.soft_update_from(&src, 0.5).unwrap();
        let updated = mlp.forward_batch(&x).unwrap();
        assert_ne!(warm, updated, "soft update must be visible");
        for b in 0..x.rows() {
            assert_eq!(updated.row(b), mlp.forward(x.row(b)).unwrap().as_slice());
        }

        // The backward path reads the same cache: gradients after the
        // updates must match the per-sample reference.
        let bt = mlp.forward_batch_trace(&x).unwrap();
        let dl = fx32_batch(5, 4);
        let mut batched = MlpGrads::zeros_like(&mlp);
        let input_err = mlp.backward_batch(&bt, &dl, &mut batched).unwrap();
        let mut looped = MlpGrads::zeros_like(&mlp);
        for b in 0..x.rows() {
            let t = mlp.forward_trace(x.row(b)).unwrap();
            let err = mlp.backward(&t, dl.row(b), &mut looped).unwrap();
            assert_eq!(input_err.row(b), err.as_slice(), "input grad row {b}");
        }
        assert_eq!(batched.w, looped.w);
        assert_eq!(batched.b, looped.b);
    }

    #[test]
    fn forward_batch_trace_rows_match_per_sample_traces() {
        let cfg = MlpConfig::new(vec![5, 12, 3]);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 3).unwrap();
        let x = fx32_batch(6, 5);
        let bt = mlp.forward_batch_trace(&x).unwrap();
        for b in 0..x.rows() {
            let t = mlp.forward_trace(x.row(b)).unwrap();
            for l in 0..mlp.num_layers() {
                assert_eq!(bt.inputs[l].row(b), t.inputs[l].as_slice());
                assert_eq!(bt.pre[l].row(b), t.pre[l].as_slice());
            }
            assert_eq!(bt.output.row(b), t.output.as_slice());
        }
        assert_eq!(bt.batch_size(), 6);
    }

    #[test]
    fn backward_batch_bit_exact_with_sample_order_backward() {
        let cfg = MlpConfig::new(vec![5, 14, 8, 2]).with_output_activation(Activation::Tanh);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 21).unwrap();
        let x = fx32_batch(7, 5);
        let dl = Matrix::<f64>::from_fn(7, 2, |b, i| ((b + i * 3) % 5) as f64 * 0.2 - 0.4)
            .cast::<Fx32>();

        // Batched path.
        let bt = mlp.forward_batch_trace(&x).unwrap();
        let mut batched = MlpGrads::zeros_like(&mlp);
        let input_err_b = mlp.backward_batch(&bt, &dl, &mut batched).unwrap();

        // Per-sample reference, ascending sample order.
        let mut looped = MlpGrads::zeros_like(&mlp);
        for b in 0..x.rows() {
            let t = mlp.forward_trace(x.row(b)).unwrap();
            let err = mlp.backward(&t, dl.row(b), &mut looped).unwrap();
            assert_eq!(input_err_b.row(b), err.as_slice(), "input grad row {b}");
        }
        assert_eq!(batched.w, looped.w, "weight gradients must be bit-exact");
        assert_eq!(batched.b, looped.b, "bias gradients must be bit-exact");
    }

    #[test]
    fn batched_qat_calibration_and_quantization_match_per_sample() {
        let cfg = MlpConfig::new(vec![4, 10, 2]).with_output_activation(Activation::Tanh);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 9).unwrap();
        let x = fx32_batch(8, 4);

        let mut qat_batched = QatRuntime::new(mlp.num_layers() + 1, 8);
        let mut qat_looped = qat_batched.clone();

        mlp.forward_batch_qat(&x, &mut qat_batched).unwrap();
        for b in 0..x.rows() {
            mlp.forward_qat(x.row(b), &mut qat_looped).unwrap();
        }
        for p in 0..qat_batched.num_points() {
            assert_eq!(
                qat_batched.monitor(p).range(),
                qat_looped.monitor(p).range(),
                "point {p} range"
            );
            assert_eq!(
                qat_batched.monitor(p).count(),
                qat_looped.monitor(p).count(),
                "point {p} count"
            );
        }

        qat_batched.freeze().unwrap();
        qat_looped.freeze().unwrap();
        let yb = mlp.forward_batch_qat(&x, &mut qat_batched).unwrap().output;
        for b in 0..x.rows() {
            let y = mlp.forward_qat(x.row(b), &mut qat_looped).unwrap().output;
            assert_eq!(yb.row(b), y.as_slice(), "quantized row {b}");
        }

        // The frozen (read-only) variant agrees too.
        let yf = mlp
            .forward_batch_qat_frozen(&x, &qat_batched)
            .unwrap()
            .output;
        assert_eq!(yf, yb);
    }

    #[test]
    fn batch_shape_errors_are_reported() {
        let mlp = Mlp::<f64>::new_random(&tiny_cfg(), 1).unwrap();
        let bad = Matrix::<f64>::zeros(4, 2);
        assert!(mlp.forward_batch(&bad).is_err());
        let x = Matrix::<f64>::zeros(4, 3);
        let t = mlp.forward_batch_trace(&x).unwrap();
        let bad_dl = Matrix::<f64>::zeros(3, 2);
        let mut grads = MlpGrads::zeros_like(&mlp);
        assert!(mlp.backward_batch(&t, &bad_dl, &mut grads).is_err());
    }

    #[test]
    fn pool_parallel_batch_passes_bit_exact_with_sequential() {
        use fixar_pool::Parallelism;
        let cfg = MlpConfig::new(vec![5, 14, 8, 2]).with_output_activation(Activation::Tanh);
        let mlp = Mlp::<Fx32>::new_random(&cfg, 21).unwrap();
        let x = fx32_batch(11, 5);
        let dl = Matrix::<f64>::from_fn(11, 2, |b, i| ((b + i * 3) % 5) as f64 * 0.2 - 0.4)
            .cast::<Fx32>();

        // Sequential reference.
        let trace_seq = mlp.forward_batch_trace(&x).unwrap();
        let mut grads_seq = MlpGrads::zeros_like(&mlp);
        let err_seq = mlp.backward_batch(&trace_seq, &dl, &mut grads_seq).unwrap();

        for workers in [1, 2, 3, 4, 8] {
            let par = Parallelism::with_workers(workers);
            let trace = mlp.forward_batch_trace_par(&x, &par).unwrap();
            assert_eq!(trace.output, trace_seq.output, "{workers} workers");
            let mut grads = MlpGrads::zeros_like(&mlp);
            let err = mlp
                .backward_batch_par(&trace, &dl, &mut grads, &par)
                .unwrap();
            assert_eq!(err, err_seq, "{workers} workers input grads");
            assert_eq!(grads.w, grads_seq.w, "{workers} workers weight grads");
            assert_eq!(grads.b, grads_seq.b, "{workers} workers bias grads");
            assert_eq!(mlp.forward_batch_par(&x, &par).unwrap(), trace_seq.output);
        }

        // QAT: calibration counts and frozen quantized outputs agree too.
        let par = Parallelism::with_workers(4);
        let mut qat_seq = QatRuntime::new(mlp.num_layers() + 1, 8);
        let mut qat_par = qat_seq.clone();
        mlp.forward_batch_qat(&x, &mut qat_seq).unwrap();
        mlp.forward_batch_qat_par(&x, &mut qat_par, &par).unwrap();
        for p in 0..qat_seq.num_points() {
            assert_eq!(qat_seq.monitor(p).range(), qat_par.monitor(p).range());
        }
        qat_seq.freeze().unwrap();
        qat_par.freeze().unwrap();
        let y_seq = mlp.forward_batch_qat_frozen(&x, &qat_seq).unwrap().output;
        let y_par = mlp
            .forward_batch_qat_frozen_par(&x, &qat_par, &par)
            .unwrap()
            .output;
        assert_eq!(y_seq, y_par);
    }

    #[test]
    fn fused_multi_network_forward_matches_separate_passes() {
        use fixar_pool::Parallelism;
        // Two independent networks of different depths on different
        // inputs, fused layer-locked: outputs and traces must equal the
        // separate pool-parallel passes bit-for-bit, in Fx32, at every
        // worker count.
        let cfg_a = MlpConfig::new(vec![5, 12, 7, 2]).with_output_activation(Activation::Tanh);
        let cfg_b = MlpConfig::new(vec![6, 9, 1]);
        let net_a = Mlp::<Fx32>::new_random(&cfg_a, 4).unwrap();
        let net_b = Mlp::<Fx32>::new_random(&cfg_b, 5).unwrap();
        let x_a = fx32_batch(8, 5);
        let x_b = fx32_batch(8, 6);
        let ref_a = net_a.forward_batch_trace(&x_a).unwrap();
        let ref_b = net_b.forward_batch_trace(&x_b).unwrap();
        for workers in [1usize, 2, 8] {
            let par = Parallelism::with_workers(workers);
            let traces = forward_batch_trace_fused(&[&net_a, &net_b], &[&x_a, &x_b], &par).unwrap();
            assert_eq!(traces.len(), 2);
            assert_eq!(traces[0].output, ref_a.output, "workers {workers}: A");
            assert_eq!(traces[1].output, ref_b.output, "workers {workers}: B");
            for l in 0..net_a.num_layers() {
                assert_eq!(traces[0].inputs[l], ref_a.inputs[l]);
                assert_eq!(traces[0].pre[l], ref_a.pre[l]);
            }
            for l in 0..net_b.num_layers() {
                assert_eq!(traces[1].pre[l], ref_b.pre[l]);
            }
            let outs = forward_batch_fused(&[&net_a, &net_b], &[&x_a, &x_b], &par).unwrap();
            assert_eq!(outs[0], ref_a.output);
            assert_eq!(outs[1], ref_b.output);
        }
        // Shape errors surface before anything runs.
        let bad = fx32_batch(3, 4);
        assert!(
            forward_batch_fused(&[&net_a, &net_b], &[&x_a, &bad], &Parallelism::sequential())
                .is_err()
        );
    }

    #[test]
    fn fused_qat_forward_leaves_each_runtime_as_separate_passes_would() {
        use fixar_pool::Parallelism;
        let cfg = MlpConfig::new(vec![4, 10, 2]).with_output_activation(Activation::Tanh);
        let net_a = Mlp::<Fx32>::new_random(&cfg, 9).unwrap();
        let net_b = Mlp::<Fx32>::new_random(&cfg, 10).unwrap();
        let x_a = fx32_batch(6, 4);
        let x_b = fx32_batch(6, 4);

        // Separate reference passes.
        let mut qat_a_ref = QatRuntime::new(net_a.num_layers() + 1, 8);
        let mut qat_b_ref = qat_a_ref.clone();
        let out_a_ref = net_a
            .forward_batch_qat(&x_a, &mut qat_a_ref)
            .unwrap()
            .output;
        let out_b_ref = net_b
            .forward_batch_qat(&x_b, &mut qat_b_ref)
            .unwrap()
            .output;

        // Fused pass over a 2-worker pool.
        let par = Parallelism::with_workers(2);
        let mut qat_a = QatRuntime::new(net_a.num_layers() + 1, 8);
        let mut qat_b = qat_a.clone();
        let traces = forward_batch_qat_fused(
            &mut [
                FusedForward {
                    mlp: &net_a,
                    input: &x_a,
                    qat: &mut qat_a,
                },
                FusedForward {
                    mlp: &net_b,
                    input: &x_b,
                    qat: &mut qat_b,
                },
            ],
            &par,
        )
        .unwrap();
        assert_eq!(traces[0].output, out_a_ref);
        assert_eq!(traces[1].output, out_b_ref);
        for p in 0..qat_a.num_points() {
            assert_eq!(qat_a.monitor(p).range(), qat_a_ref.monitor(p).range());
            assert_eq!(qat_a.monitor(p).count(), qat_a_ref.monitor(p).count());
            assert_eq!(qat_b.monitor(p).range(), qat_b_ref.monitor(p).range());
        }
        // Quantized phase agrees too.
        qat_a.freeze().unwrap();
        qat_a_ref.freeze().unwrap();
        let mut frozen = qat_a.clone();
        let fused_q = forward_batch_qat_fused(
            &mut [FusedForward {
                mlp: &net_a,
                input: &x_a,
                qat: &mut frozen,
            }],
            &par,
        )
        .unwrap();
        let sep_q = net_a.forward_batch_qat(&x_a, &mut qat_a_ref).unwrap();
        assert_eq!(fused_q[0].output, sep_q.output);
        // Mismatched runtime point counts are rejected up front.
        let mut wrong = QatRuntime::disabled(net_a.num_layers() + 5);
        assert!(forward_batch_qat_fused(
            &mut [FusedForward {
                mlp: &net_a,
                input: &x_a,
                qat: &mut wrong,
            }],
            &par,
        )
        .is_err());
    }

    #[test]
    fn fused_twin_backward_matches_separate_backwards() {
        use fixar_pool::Parallelism;
        // The TD3 twin-critic shape: two same-architecture networks,
        // same input batch, different output gradients — fused backward
        // must reproduce each separate backward bit-for-bit (grads and
        // input gradients), at every worker count.
        let cfg = MlpConfig::new(vec![6, 14, 8, 1]);
        let c1 = Mlp::<Fx32>::new_random(&cfg, 31).unwrap();
        let c2 = Mlp::<Fx32>::new_random(&cfg, 32).unwrap();
        let x = fx32_batch(9, 6);
        let dl1 = Matrix::<f64>::from_fn(9, 1, |b, _| (b as f64 - 4.0) * 0.11).cast::<Fx32>();
        let dl2 = Matrix::<f64>::from_fn(9, 1, |b, _| (b as f64 - 2.0) * 0.07).cast::<Fx32>();

        let t1 = c1.forward_batch_trace(&x).unwrap();
        let t2 = c2.forward_batch_trace(&x).unwrap();
        let mut g1_ref = MlpGrads::zeros_like(&c1);
        let mut g2_ref = MlpGrads::zeros_like(&c2);
        let e1_ref = c1.backward_batch(&t1, &dl1, &mut g1_ref).unwrap();
        let e2_ref = c2.backward_batch(&t2, &dl2, &mut g2_ref).unwrap();

        for workers in [1usize, 2, 8] {
            let par = Parallelism::with_workers(workers);
            let mut g1 = MlpGrads::zeros_like(&c1);
            let mut g2 = MlpGrads::zeros_like(&c2);
            let errs = backward_batch_fused(
                &mut [
                    FusedBackward {
                        mlp: &c1,
                        trace: &t1,
                        dl_dout: &dl1,
                        grads: &mut g1,
                    },
                    FusedBackward {
                        mlp: &c2,
                        trace: &t2,
                        dl_dout: &dl2,
                        grads: &mut g2,
                    },
                ],
                &par,
            )
            .unwrap();
            assert_eq!(errs[0], e1_ref, "workers {workers}: input grads 1");
            assert_eq!(errs[1], e2_ref, "workers {workers}: input grads 2");
            assert_eq!(g1.w, g1_ref.w, "workers {workers}: weight grads 1");
            assert_eq!(g1.b, g1_ref.b, "workers {workers}: bias grads 1");
            assert_eq!(g2.w, g2_ref.w, "workers {workers}: weight grads 2");
            assert_eq!(g2.b, g2_ref.b, "workers {workers}: bias grads 2");
        }

        // Bad output-gradient shape is rejected before any kernel runs.
        let bad = Matrix::<Fx32>::zeros(3, 1);
        let mut g = MlpGrads::zeros_like(&c1);
        assert!(backward_batch_fused(
            &mut [FusedBackward {
                mlp: &c1,
                trace: &t1,
                dl_dout: &bad,
                grads: &mut g,
            }],
            &Parallelism::sequential(),
        )
        .is_err());
    }

    #[test]
    fn grads_reset_and_scale() {
        let mlp = Mlp::<f64>::new_random(&tiny_cfg(), 3).unwrap();
        let mut grads = MlpGrads::zeros_like(&mlp);
        let trace = mlp.forward_trace(&[1.0, 1.0, 1.0]).unwrap();
        mlp.backward(&trace, &[1.0, 1.0], &mut grads).unwrap();
        let norm_before = grads.w[0].max_abs();
        assert!(norm_before > 0.0);
        grads.scale(0.5);
        assert!((grads.w[0].max_abs() - norm_before * 0.5).abs() < 1e-12);
        grads.reset();
        assert_eq!(grads.w[0].max_abs(), 0.0);
    }
}
