//! Error type of the NN stack.

use core::fmt;
use std::error::Error;

use fixar_fixed::QuantError;
use fixar_tensor::{PoolError, ShapeError};

use crate::qat::PrecisionError;

/// Error produced by network construction, inference, or training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor operand had the wrong shape.
    Shape(ShapeError),
    /// The network configuration is invalid (fewer than two layer sizes,
    /// or a zero-width layer).
    InvalidConfig(String),
    /// QAT calibration failed (see [`QuantError`]).
    Quant(QuantError),
    /// A precision policy was invalid or two runtimes' precision plans
    /// disagreed (see [`PrecisionError`]).
    Precision(PrecisionError),
    /// A worker-pool task panicked inside a fused kernel scope. The
    /// panic was contained on its worker (sibling kernels in the scope
    /// still ran, the process did not abort) and the pool stays usable.
    Pool(PoolError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Shape(e) => write!(f, "tensor shape error: {e}"),
            NnError::InvalidConfig(msg) => write!(f, "invalid network config: {msg}"),
            NnError::Quant(e) => write!(f, "quantization error: {e}"),
            NnError::Precision(e) => write!(f, "precision policy error: {e}"),
            NnError::Pool(e) => write!(f, "pool scope error: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Shape(e) => Some(e),
            NnError::Quant(e) => Some(e),
            NnError::Precision(e) => Some(e),
            NnError::Pool(e) => Some(e),
            NnError::InvalidConfig(_) => None,
        }
    }
}

impl From<ShapeError> for NnError {
    fn from(e: ShapeError) -> Self {
        NnError::Shape(e)
    }
}

impl From<QuantError> for NnError {
    fn from(e: QuantError) -> Self {
        NnError::Quant(e)
    }
}

impl From<PrecisionError> for NnError {
    fn from(e: PrecisionError) -> Self {
        NnError::Precision(e)
    }
}

impl From<PoolError> for NnError {
    fn from(e: PoolError) -> Self {
        NnError::Pool(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_cause() {
        let e = NnError::InvalidConfig("needs at least 2 layer sizes".into());
        assert!(e.to_string().contains("at least 2"));
    }

    #[test]
    fn shape_errors_convert() {
        let se = ShapeError::new("test", (1, 2), (3, 4));
        let ne: NnError = se.clone().into();
        assert_eq!(ne, NnError::Shape(se));
    }
}
