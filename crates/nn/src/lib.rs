//! The FIXAR neural-network training stack.
//!
//! Implements the multilayer perceptrons of the paper's DDPG agent — actor
//! `state → 400 → 300 → action` (ReLU, ReLU, tanh) and critic
//! `state+action → 400 → 300 → 1` (ReLU, ReLU, identity) — together with
//! back-propagation, a fixed-point-capable Adam optimizer, and the
//! quantization-aware-training hooks of Algorithm 1.
//!
//! Everything is generic over [`Scalar`], so the same code trains in
//! `f32`, `f64`, 32-bit fixed-point, or 16-bit fixed-point. Initial
//! weights are generated in `f64` from a seed and *then* converted to the
//! backend format, so different precisions start from identical models —
//! the paper's Fig. 7 comparison depends on that.
//!
//! # Example
//!
//! ```
//! use fixar_nn::{Activation, Mlp, MlpConfig};
//!
//! let cfg = MlpConfig::new(vec![3, 16, 2])
//!     .with_output_activation(Activation::Tanh);
//! let mlp = Mlp::<f32>::new_random(&cfg, 42)?;
//! let y = mlp.forward(&[0.1, -0.2, 0.3])?;
//! assert_eq!(y.len(), 2);
//! assert!(y.iter().all(|v| (-1.0..=1.0).contains(v)));
//! # Ok::<(), fixar_nn::NnError>(())
//! ```
//!
//! [`Scalar`]: fixar_fixed::Scalar

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod adam;
mod error;
mod init;
mod loss;
mod mlp;
mod qat;

pub use activation::Activation;
pub use adam::{Adam, AdamConfig};
pub use error::NnError;
pub use init::WeightInit;
pub use loss::{half_mse, half_mse_grad};
pub use mlp::{
    backward_batch_fused, forward_batch_fused, forward_batch_qat_fused, forward_batch_trace_fused,
    BatchTrace, ForwardTrace, FusedBackward, FusedForward, Mlp, MlpConfig, MlpGrads,
};
pub use qat::{PrecisionError, PrecisionPolicy, QatMode, QatRuntime, QatRuntimeBuilder};

pub use fixar_fixed::QFormat;
