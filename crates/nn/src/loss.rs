//! Loss helpers for the DDPG critic regression.

use fixar_fixed::Scalar;

/// Half mean-squared error `½·mean((pred − target)²)` as `f64`
/// (reporting/diagnostics only — the training path works with gradients).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn half_mse<S: Scalar>(pred: &[S], target: &[S]) -> f64 {
    assert_eq!(pred.len(), target.len(), "half_mse requires equal lengths");
    if pred.is_empty() {
        return 0.0;
    }
    let sum: f64 = pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| {
            let d = p.to_f64() - t.to_f64();
            d * d
        })
        .sum();
    0.5 * sum / pred.len() as f64
}

/// Gradient of the half-MSE with respect to `pred`, pre-scaled by `scale`
/// (pass `1/batch` so per-sample gradients can be accumulated without
/// saturating fixed-point buffers).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn half_mse_grad<S: Scalar>(pred: &[S], target: &[S], scale: f64) -> Vec<S> {
    assert_eq!(
        pred.len(),
        target.len(),
        "half_mse_grad requires equal lengths"
    );
    let s = S::from_f64(scale);
    pred.iter()
        .zip(target)
        .map(|(&p, &t)| (p - t) * s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;

    #[test]
    fn mse_of_equal_vectors_is_zero() {
        assert_eq!(half_mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(half_mse::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn mse_hand_computed() {
        // ½·mean((1)², (−2)²) = ½·2.5 = 1.25
        let got = half_mse(&[2.0, 0.0], &[1.0, 2.0]);
        assert!((got - 1.25).abs() < 1e-12);
    }

    #[test]
    fn grad_is_scaled_difference() {
        let g = half_mse_grad(&[2.0, 0.0], &[1.0, 2.0], 0.5);
        assert_eq!(g, vec![0.5, -1.0]);
    }

    #[test]
    fn grad_in_fixed_point() {
        let pred = [Fx32::from_f64(1.0)];
        let target = [Fx32::from_f64(0.0)];
        let g = half_mse_grad(&pred, &target, 1.0 / 64.0);
        assert!((g[0].to_f64() - 1.0 / 64.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        let _ = half_mse::<f64>(&[1.0], &[1.0, 2.0]);
    }
}
