//! Adam optimizer in backend arithmetic.
//!
//! FIXAR runs weight update on-chip in a dedicated Adam module; moments,
//! gradients, and weights are all 32-bit fixed-point. This implementation
//! keeps the *data path* (moments, elementwise update) in the backend
//! scalar `S` and computes only the per-step scalar constant
//! `lr_t = lr·sqrt(1−β₂ᵗ)/(1−β₁ᵗ)` in `f64` — exactly what a hardware
//! control processor would precompute once per step.

use fixar_fixed::Scalar;
use fixar_tensor::Matrix;

use crate::error::NnError;
use crate::mlp::{Mlp, MlpGrads};

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate (paper: `1e-4` for both actor and critic).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator offset. The default `1e-4` is chosen to be representable
    /// in Q12.20 and to degrade gracefully when tiny second moments
    /// underflow in fixed point (see DESIGN.md §4); it is applied to every
    /// backend so precision comparisons are confound-free.
    pub eps: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-4,
        }
    }
}

impl AdamConfig {
    /// Builder-style learning-rate override.
    pub fn with_lr(mut self, lr: f64) -> Self {
        self.lr = lr;
        self
    }
}

/// Adam state for one [`Mlp`].
///
/// # Example
///
/// ```
/// use fixar_nn::{Adam, AdamConfig, Mlp, MlpConfig, MlpGrads};
///
/// let cfg = MlpConfig::new(vec![2, 4, 1]);
/// let mut mlp = Mlp::<f32>::new_random(&cfg, 0)?;
/// let mut opt = Adam::new(&mlp, AdamConfig::default());
/// let mut grads = MlpGrads::zeros_like(&mlp);
/// let trace = mlp.forward_trace(&[0.5, -0.5])?;
/// mlp.backward(&trace, &[1.0], &mut grads)?;
/// opt.step(&mut mlp, &grads)?;
/// # Ok::<(), fixar_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Adam<S> {
    cfg: AdamConfig,
    m_w: Vec<Matrix<S>>,
    v_w: Vec<Matrix<S>>,
    m_b: Vec<Vec<S>>,
    v_b: Vec<Vec<S>>,
    t: u64,
}

impl<S: Scalar> Adam<S> {
    /// Creates zeroed optimizer state shaped like `mlp`.
    pub fn new(mlp: &Mlp<S>, cfg: AdamConfig) -> Self {
        let m_w = (0..mlp.num_layers())
            .map(|l| Matrix::zeros(mlp.weight(l).rows(), mlp.weight(l).cols()))
            .collect::<Vec<_>>();
        let v_w = m_w.clone();
        let m_b = (0..mlp.num_layers())
            .map(|l| vec![S::zero(); mlp.bias(l).len()])
            .collect::<Vec<_>>();
        let v_b = m_b.clone();
        Self {
            cfg,
            m_w,
            v_w,
            m_b,
            v_b,
            t: 0,
        }
    }

    /// Hyperparameters.
    pub fn config(&self) -> AdamConfig {
        self.cfg
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update of `mlp` from accumulated `grads`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `grads` (or this optimizer)
    /// was shaped for a different network.
    pub fn step(&mut self, mlp: &mut Mlp<S>, grads: &MlpGrads<S>) -> Result<(), NnError> {
        if grads.w.len() != mlp.num_layers() || self.m_w.len() != mlp.num_layers() {
            return Err(NnError::InvalidConfig(
                "optimizer/gradient shape does not match network".into(),
            ));
        }
        self.t += 1;
        let t = self.t as i32;
        // Per-step scalar constants (host/control-processor side).
        let bias_corr = (1.0 - self.cfg.beta2.powi(t)).sqrt() / (1.0 - self.cfg.beta1.powi(t));
        let lr_t = S::from_f64(self.cfg.lr * bias_corr);
        let b1 = S::from_f64(self.cfg.beta1);
        let one_minus_b1 = S::from_f64(1.0 - self.cfg.beta1);
        let b2 = S::from_f64(self.cfg.beta2);
        let one_minus_b2 = S::from_f64(1.0 - self.cfg.beta2);
        let eps = S::from_f64(self.cfg.eps);

        for l in 0..mlp.num_layers() {
            if grads.w[l].shape() != mlp.weight(l).shape() {
                return Err(NnError::InvalidConfig(
                    "gradient matrix shape mismatch".into(),
                ));
            }
            update_slice(
                mlp.weight_mut(l).as_mut_slice(),
                grads.w[l].as_slice(),
                self.m_w[l].as_mut_slice(),
                self.v_w[l].as_mut_slice(),
                (b1, one_minus_b1, b2, one_minus_b2, lr_t, eps),
            );
            update_slice(
                mlp.bias_mut(l),
                &grads.b[l],
                &mut self.m_b[l],
                &mut self.v_b[l],
                (b1, one_minus_b1, b2, one_minus_b2, lr_t, eps),
            );
        }
        Ok(())
    }
}

/// Elementwise Adam update — the inner loop of the FPGA Adam unit.
#[allow(clippy::type_complexity)]
fn update_slice<S: Scalar>(
    params: &mut [S],
    grads: &[S],
    m: &mut [S],
    v: &mut [S],
    (b1, omb1, b2, omb2, lr_t, eps): (S, S, S, S, S, S),
) {
    for i in 0..params.len() {
        let g = grads[i];
        m[i] = b1 * m[i] + omb1 * g;
        v[i] = b2 * v[i] + omb2 * (g * g);
        let denom = v[i].sqrt() + eps;
        params[i] -= lr_t * (m[i] / denom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;
    use fixar_fixed::{Fx16, Fx32};

    /// Trains y = w·x toward a fixed target with Adam; returns final loss.
    fn fit_line<S: Scalar>(lr: f64, steps: usize) -> f64 {
        let cfg = MlpConfig::new(vec![1, 1]);
        let mut mlp = Mlp::<S>::new_random(&cfg, 4).unwrap();
        let mut opt = Adam::new(&mlp, AdamConfig::default().with_lr(lr));
        let x = [S::from_f64(1.0)];
        let target = 0.75;
        let mut loss = f64::MAX;
        for _ in 0..steps {
            let trace = mlp.forward_trace(&x).unwrap();
            let err = trace.output[0].to_f64() - target;
            loss = 0.5 * err * err;
            let dl = vec![S::from_f64(err)];
            let mut grads = MlpGrads::zeros_like(&mlp);
            mlp.backward(&trace, &dl, &mut grads).unwrap();
            opt.step(&mut mlp, &grads).unwrap();
        }
        loss
    }

    #[test]
    fn adam_fits_in_float64() {
        assert!(fit_line::<f64>(0.01, 500) < 1e-4);
    }

    #[test]
    fn adam_fits_in_fixed32() {
        assert!(fit_line::<Fx32>(0.01, 500) < 1e-3);
    }

    #[test]
    fn adam_fails_to_fit_in_fixed16_with_small_lr() {
        // The paper's observation: 16-bit fixed-point from scratch cannot
        // train — at lr = 1e-4 the per-step scale itself is below one ulp
        // of Q6.10, so the model never moves at all.
        let cfg = MlpConfig::new(vec![1, 1]);
        let mut mlp = Mlp::<Fx16>::new_random(&cfg, 4).unwrap();
        let before = mlp.clone();
        let mut opt = Adam::new(&mlp, AdamConfig::default().with_lr(1e-4));
        let x = [Fx16::from_f64(1.0)];
        for _ in 0..100 {
            let trace = mlp.forward_trace(&x).unwrap();
            let err = trace.output[0].to_f64() - 0.75;
            let mut grads = MlpGrads::zeros_like(&mlp);
            mlp.backward(&trace, &[Fx16::from_f64(err)], &mut grads)
                .unwrap();
            opt.step(&mut mlp, &grads).unwrap();
        }
        assert_eq!(mlp, before, "fixed16 training must stagnate completely");
        // Meanwhile the same protocol in f64 makes measurable progress.
        assert!(fit_line::<f64>(1e-2, 500) < 1e-4);
    }

    #[test]
    fn step_counts_and_config_access() {
        let cfg = MlpConfig::new(vec![2, 2]);
        let mut mlp = Mlp::<f64>::new_random(&cfg, 0).unwrap();
        let mut opt = Adam::new(&mlp, AdamConfig::default());
        assert_eq!(opt.steps(), 0);
        let grads = MlpGrads::zeros_like(&mlp);
        opt.step(&mut mlp, &grads).unwrap();
        assert_eq!(opt.steps(), 1);
        assert_eq!(opt.config().lr, 1e-4);
    }

    #[test]
    fn zero_gradient_changes_nothing() {
        let cfg = MlpConfig::new(vec![3, 3]);
        let mut mlp = Mlp::<f64>::new_random(&cfg, 8).unwrap();
        let before = mlp.clone();
        let grads = MlpGrads::zeros_like(&mlp);
        let mut opt = Adam::new(&mlp, AdamConfig::default());
        opt.step(&mut mlp, &grads).unwrap();
        assert_eq!(mlp, before);
    }

    #[test]
    fn mismatched_grads_rejected() {
        let mut mlp = Mlp::<f64>::new_random(&MlpConfig::new(vec![2, 2]), 0).unwrap();
        let other = Mlp::<f64>::new_random(&MlpConfig::new(vec![2, 3, 2]), 0).unwrap();
        let grads = MlpGrads::zeros_like(&other);
        let mut opt = Adam::new(&mlp, AdamConfig::default());
        assert!(opt.step(&mut mlp, &grads).is_err());
    }
}
