//! The quantization-aware-training runtime of Algorithm 1, generalized
//! to per-point precision.
//!
//! FIXAR's Algorithm 1 calibrates one n-bit affine quantizer per
//! activation point from ranges observed during the quantization delay.
//! This module keeps that protocol but makes the *format* of each point
//! a first-class axis: a [`PrecisionPolicy`] decides, per activation
//! point, whether the quantizer comes from range calibration at some
//! width, from an explicit [`QFormat`] grid, from a step-indexed
//! bit-width schedule, or adaptively from the observed range itself.

use core::fmt;
use std::error::Error;

use fixar_fixed::{AffineQuantizer, QFormat, QuantError, RangeMonitor, Scalar};

/// How a [`QatRuntime`] chooses each activation point's number format at
/// freeze time.
///
/// Every variant keeps the Algorithm 1 protocol (calibrate during the
/// delay window, freeze once, serve immutably); they differ only in how
/// the per-point quantizer grid is derived:
///
/// * [`PrecisionPolicy::Uniform`] — one global bit width, ranges
///   calibrated per point. Bit-identical to the legacy
///   `QatRuntime::new(num_points, bits)` runtime.
/// * [`PrecisionPolicy::PerPoint`] — an explicit [`QFormat`] table;
///   points without an entry fall back to range calibration at
///   `base_bits`. Explicit points are *data independent*: the grid is
///   fully determined by the format, so mixed-precision snapshots serve
///   reproducibly no matter what data calibrated them.
/// * [`PrecisionPolicy::Scheduled`] — bit width as a step function of
///   the training step at which the freeze fires (Zhang et al.'s
///   adaptive-precision-training shape: precision per epoch).
/// * [`PrecisionPolicy::Adaptive`] — per point, the narrowest width in
///   `[min_bits, max_bits]` whose calibrated step size still meets
///   `target_delta` (Dai et al.'s trainable-bitwidth shape, driven by
///   range statistics).
///
/// # Example
///
/// ```
/// use fixar_fixed::QFormat;
/// use fixar_nn::{PrecisionPolicy, QatRuntime};
///
/// // 8-bit first hidden activation, 16-bit everywhere else.
/// let qat = QatRuntime::builder(3)
///     .uniform_bits(16)
///     .point_format(1, QFormat::q(4, 4)?)
///     .build()?;
/// assert!(matches!(qat.policy(), PrecisionPolicy::PerPoint { .. }));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum PrecisionPolicy {
    /// One global bit width; every point range-calibrated (legacy ADFP).
    Uniform {
        /// Quantizer bit width for every activation point.
        bits: u32,
    },
    /// Explicit per-point formats with a calibrated fallback width.
    PerPoint {
        /// One entry per activation point: `Some(fmt)` freezes that point
        /// onto the explicit `fmt` grid; `None` range-calibrates it at
        /// `base_bits`.
        formats: Vec<Option<QFormat>>,
        /// Bit width for points without an explicit format.
        base_bits: u32,
    },
    /// Bit width chosen by the training step at which the freeze fires.
    Scheduled {
        /// `(from_step, bits)` milestones, sorted by step ascending; the
        /// freeze uses the last milestone whose step is ≤ the freeze
        /// step (the first milestone if none is).
        milestones: Vec<(u64, u32)>,
    },
    /// Narrowest width meeting a resolution target, chosen per point
    /// from the calibrated range.
    Adaptive {
        /// Lower bound on the chosen width.
        min_bits: u32,
        /// Upper bound on the chosen width (used when even it cannot
        /// meet the target).
        max_bits: u32,
        /// Largest acceptable quantization step δ.
        target_delta: f64,
    },
}

impl PrecisionPolicy {
    /// The uniform policy at `bits` — what the legacy constructor uses.
    pub fn uniform(bits: u32) -> Self {
        PrecisionPolicy::Uniform { bits }
    }

    /// Nominal (widest possible) bit width under this policy — what
    /// resource models should budget for.
    pub fn nominal_bits(&self) -> u32 {
        match self {
            PrecisionPolicy::Uniform { bits } => *bits,
            PrecisionPolicy::PerPoint { formats, base_bits } => formats
                .iter()
                .flatten()
                .map(QFormat::total_bits)
                .max()
                .unwrap_or(0)
                .max(*base_bits),
            PrecisionPolicy::Scheduled { milestones } => {
                milestones.iter().map(|&(_, b)| b).max().unwrap_or(0)
            }
            PrecisionPolicy::Adaptive { max_bits, .. } => *max_bits,
        }
    }

    /// Checks the policy against a point count: widths in `1..=31`,
    /// format tables sized to the network, milestones non-empty and
    /// sorted.
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError::InvalidPolicy`] describing the first
    /// violation.
    pub fn validate(&self, num_points: usize) -> Result<(), PrecisionError> {
        let check_bits = |what: &str, b: u32| {
            if b == 0 || b > 31 {
                Err(PrecisionError::InvalidPolicy(format!(
                    "{what} must be 1..=31, got {b}"
                )))
            } else {
                Ok(())
            }
        };
        match self {
            PrecisionPolicy::Uniform { bits } => check_bits("uniform bits", *bits),
            PrecisionPolicy::PerPoint { formats, base_bits } => {
                if formats.len() != num_points {
                    return Err(PrecisionError::InvalidPolicy(format!(
                        "format table has {} entries, runtime has {num_points} points",
                        formats.len()
                    )));
                }
                check_bits("per-point base bits", *base_bits)?;
                for (i, fmt) in formats.iter().enumerate() {
                    if let Some(fmt) = fmt {
                        check_bits(&format!("point {i} format width"), fmt.total_bits())?;
                    }
                }
                Ok(())
            }
            PrecisionPolicy::Scheduled { milestones } => {
                if milestones.is_empty() {
                    return Err(PrecisionError::InvalidPolicy(
                        "schedule needs at least one (step, bits) milestone".into(),
                    ));
                }
                if !milestones.windows(2).all(|w| w[0].0 < w[1].0) {
                    return Err(PrecisionError::InvalidPolicy(
                        "schedule milestones must be sorted by strictly increasing step".into(),
                    ));
                }
                milestones
                    .iter()
                    .try_for_each(|&(_, b)| check_bits("scheduled bits", b))
            }
            PrecisionPolicy::Adaptive {
                min_bits,
                max_bits,
                target_delta,
            } => {
                check_bits("adaptive min bits", *min_bits)?;
                check_bits("adaptive max bits", *max_bits)?;
                if min_bits > max_bits {
                    return Err(PrecisionError::InvalidPolicy(format!(
                        "adaptive min bits {min_bits} exceeds max bits {max_bits}"
                    )));
                }
                if target_delta.is_nan() || *target_delta <= 0.0 {
                    return Err(PrecisionError::InvalidPolicy(format!(
                        "adaptive target delta must be positive, got {target_delta}"
                    )));
                }
                Ok(())
            }
        }
    }

    /// The bit width a [`PrecisionPolicy::Scheduled`] policy resolves to
    /// at `step`; other policies return their nominal width.
    pub fn bits_at_step(&self, step: u64) -> u32 {
        match self {
            PrecisionPolicy::Scheduled { milestones } => milestones
                .iter()
                .take_while(|&&(s, _)| s <= step)
                .last()
                .or_else(|| milestones.first())
                .map_or(0, |&(_, b)| b),
            _ => self.nominal_bits(),
        }
    }
}

/// Typed error for precision-policy construction and runtime merging.
#[derive(Debug, Clone, PartialEq)]
pub enum PrecisionError {
    /// Two runtimes with different activation-point counts were merged.
    PointCountMismatch {
        /// Point count of the receiving runtime.
        ours: usize,
        /// Point count of the runtime being merged in.
        theirs: usize,
    },
    /// Two runtimes with per-point format tables disagreed at a point.
    FormatMismatch {
        /// First disagreeing activation point.
        point: usize,
        /// Receiving runtime's format at that point.
        ours: Option<QFormat>,
        /// Incoming runtime's format at that point.
        theirs: Option<QFormat>,
    },
    /// Two runtimes ran different precision policies.
    PolicyMismatch {
        /// Receiving runtime's policy, rendered for the message.
        ours: String,
        /// Incoming runtime's policy, rendered for the message.
        theirs: String,
    },
    /// A policy failed validation (width out of `1..=31`, mis-sized
    /// format table, empty or unsorted schedule, …).
    InvalidPolicy(String),
}

impl fmt::Display for PrecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecisionError::PointCountMismatch { ours, theirs } => write!(
                f,
                "cannot merge QAT runtimes with different point counts ({ours} vs {theirs})"
            ),
            PrecisionError::FormatMismatch {
                point,
                ours,
                theirs,
            } => {
                let show = |fmt: &Option<QFormat>| {
                    fmt.map_or_else(|| "calibrated".to_string(), |q| q.to_string())
                };
                write!(
                    f,
                    "per-point formats disagree at activation point {point}: {} vs {}",
                    show(ours),
                    show(theirs)
                )
            }
            PrecisionError::PolicyMismatch { ours, theirs } => {
                write!(
                    f,
                    "cannot merge QAT runtimes with different precision policies ({ours} vs {theirs})"
                )
            }
            PrecisionError::InvalidPolicy(msg) => write!(f, "invalid precision policy: {msg}"),
        }
    }
}

impl Error for PrecisionError {}

/// Phase of the QAT schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QatMode {
    /// No monitoring, no quantization (plain full-precision training, and
    /// the float/pure-fixed baselines of Fig. 7).
    #[default]
    Off,
    /// Full-precision compute while min/max of every activation point is
    /// captured (the `t < d` branch of Algorithm 1).
    Calibrate,
    /// Activations are projected onto the n-bit affine grid before use
    /// (the `t ≥ d` branch).
    Quantize,
}

/// Per-network QAT state: one activation point per layer boundary.
///
/// Point `0` is the network input; point `l+1` is the post-activation
/// output of layer `l`. The runtime is driven by
/// [`Mlp::forward_qat`](crate::Mlp::forward_qat); the training loop only
/// switches modes and calls [`QatRuntime::freeze_at_step`] when the
/// quantization delay elapses. Each point's frozen format is chosen by
/// the runtime's [`PrecisionPolicy`].
///
/// # Example
///
/// ```
/// use fixar_fixed::QFormat;
/// use fixar_nn::{QatMode, QatRuntime};
///
/// // Mixed precision: explicit Q4.4 (8-bit) input point, 16-bit
/// // calibrated elsewhere.
/// let mut qat = QatRuntime::builder(3)
///     .uniform_bits(16)
///     .point_format(0, QFormat::q(4, 4)?)
///     .build()?;
/// assert_eq!(qat.mode(), QatMode::Calibrate);
/// // ... run forward passes, then:
/// // qat.freeze_at_step(step)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct QatRuntime {
    mode: QatMode,
    policy: PrecisionPolicy,
    headroom: f64,
    monitors: Vec<RangeMonitor>,
    quantizers: Vec<Option<AffineQuantizer>>,
    excluded: Vec<bool>,
}

impl QatRuntime {
    /// Creates a runtime in `Calibrate` mode with `num_points` activation
    /// points (a network with `L` layers needs `L + 1`) quantizing every
    /// point to `bits` bits after freezing.
    ///
    /// This is the legacy uniform-precision constructor, kept as a thin
    /// shim over [`QatRuntime::builder`] with
    /// [`PrecisionPolicy::Uniform`] — bit-for-bit identical behaviour.
    /// New code should prefer the builder, which can express per-point
    /// formats, schedules, and adaptive widths.
    pub fn new(num_points: usize, bits: u32) -> Self {
        Self::with_policy_unchecked(num_points, PrecisionPolicy::Uniform { bits })
    }

    /// Starts a [`QatRuntimeBuilder`] for a runtime with `num_points`
    /// activation points (a network with `L` layers needs `L + 1`).
    pub fn builder(num_points: usize) -> QatRuntimeBuilder {
        QatRuntimeBuilder::new(num_points)
    }

    fn with_policy_unchecked(num_points: usize, policy: PrecisionPolicy) -> Self {
        Self {
            mode: QatMode::Calibrate,
            policy,
            headroom: 1.0,
            monitors: vec![RangeMonitor::new(); num_points],
            quantizers: vec![None; num_points],
            excluded: vec![false; num_points],
        }
    }

    /// Creates a permanently-off runtime (baselines and plain inference).
    pub fn disabled(num_points: usize) -> Self {
        Self {
            mode: QatMode::Off,
            policy: PrecisionPolicy::Uniform { bits: 0 },
            headroom: 1.0,
            monitors: vec![RangeMonitor::new(); num_points],
            quantizers: vec![None; num_points],
            excluded: vec![false; num_points],
        }
    }

    /// Sets the calibration headroom: frozen ranges are widened by this
    /// factor (about zero), so activations that drift moderately beyond
    /// their calibration-window extremes still quantize instead of
    /// clamping. A fixed-range hardware design always budgets headroom;
    /// `1.0` (the default) freezes the observed range exactly.
    ///
    /// # Panics
    ///
    /// Panics if `headroom < 1.0`.
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        assert!(headroom >= 1.0, "headroom must be at least 1.0");
        self.headroom = headroom;
        self
    }

    /// Excludes a point from quantization (it stays full-precision after
    /// the freeze). The DDPG agent excludes each network's *final output*
    /// point: the critic's Q-value is a regression output, not a hidden
    /// activation — its range keeps drifting as the policy improves, and
    /// clamping it to a frozen range strangles TD learning. (The actor's
    /// tanh output re-enters the critic through its quantized input point
    /// anyway.)
    ///
    /// # Panics
    ///
    /// Panics if `point >= num_points()`.
    pub fn exclude_point(&mut self, point: usize) {
        self.excluded[point] = true;
    }

    /// Current mode.
    #[inline]
    pub fn mode(&self) -> QatMode {
        self.mode
    }

    /// Number of activation points.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.monitors.len()
    }

    /// Nominal (widest) quantizer bit width under the runtime's policy.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.policy.nominal_bits()
    }

    /// The precision policy governing freeze-time format selection.
    #[inline]
    pub fn policy(&self) -> &PrecisionPolicy {
        &self.policy
    }

    /// The effective `Qm.n` format a point froze to, or `None` while
    /// calibrating / for pass-through points. This is what a published
    /// policy snapshot (`fixar-rl`) carries per layer.
    ///
    /// # Panics
    ///
    /// Panics if `point >= num_points()`.
    pub fn point_format(&self, point: usize) -> Option<QFormat> {
        self.quantizers[point].as_ref().map(AffineQuantizer::format)
    }

    /// Effective per-point formats (one entry per activation point;
    /// `None` = full-precision pass-through).
    pub fn point_formats(&self) -> Vec<Option<QFormat>> {
        (0..self.num_points())
            .map(|p| self.point_format(p))
            .collect()
    }

    /// Captured range monitor of a point (read-only diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `point >= num_points()`.
    pub fn monitor(&self, point: usize) -> &RangeMonitor {
        &self.monitors[point]
    }

    /// Frozen quantizer of a point, if any.
    ///
    /// # Panics
    ///
    /// Panics if `point >= num_points()`.
    pub fn quantizer(&self, point: usize) -> Option<&AffineQuantizer> {
        self.quantizers[point].as_ref()
    }

    /// `true` once any activation point has calibration data — freezing
    /// before this would be meaningless.
    pub fn has_observations(&self) -> bool {
        self.monitors.iter().any(|m| m.count() > 0)
    }

    /// Ends calibration as if the whole QAT schedule had elapsed —
    /// equivalent to [`QatRuntime::freeze_at_step`] at `u64::MAX` (a
    /// [`PrecisionPolicy::Scheduled`] runtime freezes at its final
    /// milestone; every other policy ignores the step).
    ///
    /// # Errors
    ///
    /// As [`QatRuntime::freeze_at_step`].
    pub fn freeze(&mut self) -> Result<(), QuantError> {
        self.freeze_at_step(u64::MAX)
    }

    /// Ends calibration at training step `step`: builds one
    /// [`AffineQuantizer`] per point — from the captured range at the
    /// policy's width, or directly from an explicit [`QFormat`] grid —
    /// and switches to `Quantize` mode.
    ///
    /// Calibrated points whose monitor captured no usable range (e.g. an
    /// always-zero ReLU lane) are left unquantized and pass through;
    /// explicit-format points are data independent and always freeze.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if no point froze and none captured a
    /// usable range — freezing before any calibration forward pass is a
    /// protocol bug.
    pub fn freeze_at_step(&mut self, step: u64) -> Result<(), QuantError> {
        let scheduled_bits = self.policy.bits_at_step(step);
        let mut any = false;
        for (point, ((m, q), &excluded)) in self
            .monitors
            .iter()
            .zip(&mut self.quantizers)
            .zip(&self.excluded)
            .enumerate()
        {
            if excluded {
                *q = None;
                // An excluded point with data still counts as calibrated.
                any |= m.count() > 0;
                continue;
            }
            // Widen away from zero only, so asymmetric (e.g. post-ReLU)
            // ranges keep their tight side and zero stays a code point.
            let h = self.headroom.max(1.0);
            let widened = m.range().map(|(lo, hi)| {
                let lo = if lo < 0.0 { lo * h } else { lo };
                let hi = if hi > 0.0 { hi * h } else { hi };
                (lo, hi)
            });
            let explicit = match &self.policy {
                PrecisionPolicy::PerPoint { formats, .. } => formats.get(point).copied().flatten(),
                _ => None,
            };
            if let Some(fmt) = explicit {
                match AffineQuantizer::from_format(fmt) {
                    Ok(quant) => {
                        *q = Some(quant);
                        any = true;
                    }
                    Err(_) => *q = None,
                }
                continue;
            }
            let bits = match &self.policy {
                PrecisionPolicy::Uniform { bits } => *bits,
                PrecisionPolicy::PerPoint { base_bits, .. } => *base_bits,
                PrecisionPolicy::Scheduled { .. } => scheduled_bits,
                PrecisionPolicy::Adaptive {
                    min_bits,
                    max_bits,
                    target_delta,
                } => match widened {
                    Some((lo, hi)) => {
                        Self::adaptive_bits(lo, hi, *min_bits, *max_bits, *target_delta)
                    }
                    None => *max_bits,
                },
            };
            match widened.map(|(lo, hi)| AffineQuantizer::from_range(lo, hi, bits)) {
                Some(Ok(quant)) => {
                    *q = Some(quant);
                    any = true;
                }
                _ => *q = None,
            }
        }
        if !any {
            return Err(QuantError::DegenerateRange {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            });
        }
        self.mode = QatMode::Quantize;
        Ok(())
    }

    /// Narrowest width in `[min_bits, max_bits]` whose Algorithm 1 step
    /// `δ = (|lo| + |hi|) / 2^bits` meets `target_delta`.
    fn adaptive_bits(lo: f64, hi: f64, min_bits: u32, max_bits: u32, target_delta: f64) -> u32 {
        let span = lo.abs() + hi.abs();
        for bits in min_bits..=max_bits {
            if span / (1u64 << bits) as f64 <= target_delta {
                return bits;
            }
        }
        max_bits
    }

    /// Processes one activation point in place according to the mode.
    /// Called by the network forward pass.
    pub fn process<S: Scalar>(&mut self, point: usize, xs: &mut [S]) {
        match self.mode {
            QatMode::Off => {}
            QatMode::Calibrate => self.monitors[point].observe_slice(xs),
            QatMode::Quantize => {
                if let Some(q) = &self.quantizers[point] {
                    q.fake_quantize_slice(xs);
                }
            }
        }
    }

    /// Read-only variant of [`QatRuntime::process`]: applies frozen
    /// quantizers but records nothing. In `Calibrate` mode this is a
    /// no-op — thread-parallel callers calibrate into per-worker clones
    /// and merge them back with [`QatRuntime::merge_from`].
    pub fn apply<S: Scalar>(&self, point: usize, xs: &mut [S]) {
        if self.mode == QatMode::Quantize {
            if let Some(q) = &self.quantizers[point] {
                q.fake_quantize_slice(xs);
            }
        }
    }

    /// Folds another runtime's captured ranges into this one (the
    /// reduction step after per-worker calibration). Quantizers and mode
    /// are not affected.
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError::PointCountMismatch`] when the runtimes
    /// have different point counts,
    /// [`PrecisionError::FormatMismatch`] when both run per-point
    /// policies whose format tables disagree, and
    /// [`PrecisionError::PolicyMismatch`] when the policies differ in
    /// any other way — merging ranges across divergent precision plans
    /// would freeze one runtime with the other's statistics.
    pub fn merge_from(&mut self, other: &QatRuntime) -> Result<(), PrecisionError> {
        if self.monitors.len() != other.monitors.len() {
            return Err(PrecisionError::PointCountMismatch {
                ours: self.monitors.len(),
                theirs: other.monitors.len(),
            });
        }
        if self.policy != other.policy {
            if let (
                PrecisionPolicy::PerPoint { formats: a, .. },
                PrecisionPolicy::PerPoint { formats: b, .. },
            ) = (&self.policy, &other.policy)
            {
                if let Some(point) = (0..a.len().max(b.len()))
                    .find(|&i| a.get(i).copied().flatten() != b.get(i).copied().flatten())
                {
                    return Err(PrecisionError::FormatMismatch {
                        point,
                        ours: a.get(point).copied().flatten(),
                        theirs: b.get(point).copied().flatten(),
                    });
                }
            }
            return Err(PrecisionError::PolicyMismatch {
                ours: format!("{:?}", self.policy),
                theirs: format!("{:?}", other.policy),
            });
        }
        for (mine, theirs) in self.monitors.iter_mut().zip(&other.monitors) {
            mine.merge(theirs);
        }
        Ok(())
    }
}

/// Builder for a [`QatRuntime`] with a validated [`PrecisionPolicy`] —
/// the redesigned construction API (the legacy
/// [`QatRuntime::new`] shim covers only the uniform case).
///
/// # Example
///
/// ```
/// use fixar_fixed::QFormat;
/// use fixar_nn::QatRuntime;
///
/// let qat = QatRuntime::builder(4)
///     .uniform_bits(16)
///     .point_format(1, QFormat::q(4, 4)?) // 8-bit hidden activation
///     .point_format(2, QFormat::q(4, 8)?) // 12-bit hidden activation
///     .headroom(1.5)
///     .exclude_point(3) // regression output stays full precision
///     .build()?;
/// assert_eq!(qat.bits(), 16);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct QatRuntimeBuilder {
    num_points: usize,
    policy: PrecisionPolicy,
    overrides: Vec<(usize, QFormat)>,
    headroom: f64,
    excluded: Vec<usize>,
}

impl QatRuntimeBuilder {
    fn new(num_points: usize) -> Self {
        Self {
            num_points,
            policy: PrecisionPolicy::Uniform {
                bits: fixar_fixed::HALF_PRECISION_BITS,
            },
            overrides: Vec::new(),
            headroom: 1.0,
            excluded: Vec::new(),
        }
    }

    /// Sets the base policy (default: uniform 16-bit, the paper's
    /// Algorithm 1 width). [`QatRuntimeBuilder::point_format`] overrides
    /// are layered on top at [`QatRuntimeBuilder::build`] time.
    pub fn policy(mut self, policy: PrecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand for `policy(PrecisionPolicy::Uniform { bits })`.
    pub fn uniform_bits(self, bits: u32) -> Self {
        self.policy(PrecisionPolicy::Uniform { bits })
    }

    /// Pins activation point `point` to an explicit `Qm.n` grid. Any
    /// point so pinned freezes data-independently; the remaining points
    /// follow the base policy (a non-uniform base policy combined with
    /// pins is rejected at build time).
    pub fn point_format(mut self, point: usize, format: QFormat) -> Self {
        self.overrides.push((point, format));
        self
    }

    /// Calibration headroom, as [`QatRuntime::with_headroom`] (but
    /// validated at build time instead of panicking).
    pub fn headroom(mut self, headroom: f64) -> Self {
        self.headroom = headroom;
        self
    }

    /// Excludes a point from quantization, as
    /// [`QatRuntime::exclude_point`].
    pub fn exclude_point(mut self, point: usize) -> Self {
        self.excluded.push(point);
        self
    }

    /// Validates and builds the runtime (in `Calibrate` mode).
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError::InvalidPolicy`] for out-of-range
    /// widths or points, headroom below `1.0`, format pins on a
    /// non-uniform/non-per-point base policy, or pins on excluded
    /// points.
    pub fn build(self) -> Result<QatRuntime, PrecisionError> {
        if self.headroom < 1.0 {
            return Err(PrecisionError::InvalidPolicy(format!(
                "headroom must be at least 1.0, got {}",
                self.headroom
            )));
        }
        for &p in &self.excluded {
            if p >= self.num_points {
                return Err(PrecisionError::InvalidPolicy(format!(
                    "excluded point {p} out of range (runtime has {} points)",
                    self.num_points
                )));
            }
        }
        let mut policy = self.policy;
        if !self.overrides.is_empty() {
            let (mut formats, base_bits) = match policy {
                PrecisionPolicy::Uniform { bits } => (vec![None; self.num_points], bits),
                PrecisionPolicy::PerPoint { formats, base_bits } => (formats, base_bits),
                other => {
                    return Err(PrecisionError::InvalidPolicy(format!(
                        "point_format pins require a uniform or per-point base policy, got {other:?}"
                    )));
                }
            };
            formats.resize(self.num_points, None);
            for &(point, fmt) in &self.overrides {
                if point >= self.num_points {
                    return Err(PrecisionError::InvalidPolicy(format!(
                        "point_format({point}, {fmt}) out of range (runtime has {} points)",
                        self.num_points
                    )));
                }
                if self.excluded.contains(&point) {
                    return Err(PrecisionError::InvalidPolicy(format!(
                        "point {point} is both excluded and pinned to {fmt}"
                    )));
                }
                formats[point] = Some(fmt);
            }
            policy = PrecisionPolicy::PerPoint { formats, base_bits };
        }
        policy.validate(self.num_points)?;
        let mut rt = QatRuntime::with_policy_unchecked(self.num_points, policy);
        rt.headroom = self.headroom;
        for &p in &self.excluded {
            rt.excluded[p] = true;
        }
        Ok(rt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;

    #[test]
    fn calibrate_then_freeze_then_quantize() {
        let mut qat = QatRuntime::new(2, 8);
        let mut xs = [Fx32::from_f64(1.0), Fx32::from_f64(-2.0)];
        qat.process(0, &mut xs);
        qat.process(1, &mut xs);
        assert_eq!(qat.monitor(0).count(), 2);
        // Calibration never mutates the data.
        assert_eq!(xs[0].to_f64(), 1.0);

        qat.freeze().unwrap();
        assert_eq!(qat.mode(), QatMode::Quantize);
        let mut ys = [Fx32::from_f64(0.333), Fx32::from_f64(-1.111)];
        let before: Vec<f64> = ys.iter().map(|v| v.to_f64()).collect();
        qat.process(0, &mut ys);
        let delta = qat.quantizer(0).unwrap().delta();
        for (y, b) in ys.iter().zip(before) {
            assert!((y.to_f64() - b).abs() <= delta + 1e-6);
        }
    }

    #[test]
    fn freeze_without_observations_fails() {
        let mut qat = QatRuntime::new(2, 8);
        assert!(qat.freeze().is_err());
        assert_eq!(qat.mode(), QatMode::Calibrate);
    }

    #[test]
    fn dead_points_pass_through_after_freeze() {
        let mut qat = QatRuntime::new(2, 8);
        let mut xs = [1.0f64, 2.0];
        qat.process(0, &mut xs); // point 1 never observed
        qat.freeze().unwrap();
        assert!(qat.quantizer(0).is_some());
        assert!(qat.quantizer(1).is_none());
        let mut ys = [0.12345f64];
        qat.process(1, &mut ys);
        assert_eq!(ys[0], 0.12345); // untouched
    }

    #[test]
    fn excluded_points_stay_full_precision() {
        let mut qat = QatRuntime::new(2, 8);
        qat.exclude_point(1);
        let mut xs = [1.0f64, -2.0];
        qat.process(0, &mut xs);
        qat.process(1, &mut xs);
        qat.freeze().unwrap();
        assert!(qat.quantizer(0).is_some());
        assert!(
            qat.quantizer(1).is_none(),
            "excluded point must not quantize"
        );
        let mut ys = [0.123456f64];
        qat.process(1, &mut ys);
        assert_eq!(ys[0], 0.123456);
    }

    #[test]
    fn headroom_widens_frozen_ranges_away_from_zero() {
        let mut base = QatRuntime::new(1, 8);
        let mut wide = QatRuntime::new(1, 8).with_headroom(2.0);
        let mut xs = [-1.0f64, 3.0];
        base.process(0, &mut xs);
        wide.process(0, &mut xs);
        base.freeze().unwrap();
        wide.freeze().unwrap();
        // Base clamps at the observed max; the widened runtime still
        // quantizes a value 1.5× beyond it.
        let probe = 4.5f64;
        let base_out = base.quantizer(0).unwrap().fake_quantize(probe);
        let wide_out = wide.quantizer(0).unwrap().fake_quantize(probe);
        assert!(base_out < 3.1, "base should clamp: {base_out}");
        assert!(
            (wide_out - probe).abs() < 0.1,
            "widened should cover: {wide_out}"
        );
        // δ widens proportionally (2× range → 2× step at equal bits).
        let ratio = wide.quantizer(0).unwrap().delta() / base.quantizer(0).unwrap().delta();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn headroom_below_one_rejected() {
        let _ = QatRuntime::new(1, 8).with_headroom(0.5);
    }

    #[test]
    fn apply_is_read_only_during_calibration() {
        let qat = QatRuntime::new(1, 8);
        let mut xs = [1.0f64];
        qat.apply(0, &mut xs);
        assert_eq!(qat.monitor(0).count(), 0, "apply must not record");
        assert_eq!(xs[0], 1.0);
    }

    #[test]
    fn merge_from_combines_worker_monitors() {
        let mut main = QatRuntime::new(1, 8);
        let mut w1 = main.clone();
        let mut w2 = main.clone();
        w1.process(0, &mut [1.0f64, -3.0]);
        w2.process(0, &mut [5.0f64]);
        main.merge_from(&w1).unwrap();
        main.merge_from(&w2).unwrap();
        assert_eq!(main.monitor(0).range(), Some((-3.0, 5.0)));
        assert_eq!(main.monitor(0).count(), 3);
    }

    #[test]
    fn merge_from_rejects_point_count_mismatch() {
        let mut a = QatRuntime::new(2, 8);
        let b = QatRuntime::new(3, 8);
        assert_eq!(
            a.merge_from(&b),
            Err(PrecisionError::PointCountMismatch { ours: 2, theirs: 3 })
        );
    }

    #[test]
    fn merge_from_rejects_mismatched_formats_with_typed_error() {
        let q44 = QFormat::q(4, 4).unwrap();
        let q48 = QFormat::q(4, 8).unwrap();
        let mut a = QatRuntime::builder(2).point_format(0, q44).build().unwrap();
        let b = QatRuntime::builder(2).point_format(0, q48).build().unwrap();
        match a.merge_from(&b) {
            Err(PrecisionError::FormatMismatch {
                point,
                ours,
                theirs,
            }) => {
                assert_eq!(point, 0);
                assert_eq!(ours, Some(q44));
                assert_eq!(theirs, Some(q48));
            }
            other => panic!("expected FormatMismatch, got {other:?}"),
        }
        // Different policy kinds are also typed rejections.
        let c = QatRuntime::new(2, 8);
        assert!(matches!(
            a.merge_from(&c),
            Err(PrecisionError::PolicyMismatch { .. })
        ));
        // Identical format tables merge fine.
        let mut d = QatRuntime::builder(2).point_format(0, q44).build().unwrap();
        let mut e = d.clone();
        e.process(0, &mut [1.0f64]);
        d.merge_from(&e).unwrap();
        assert_eq!(d.monitor(0).count(), 1);
    }

    #[test]
    fn builder_uniform_matches_legacy_runtime_bit_for_bit() {
        let mut legacy = QatRuntime::new(3, 8).with_headroom(1.5);
        let mut built = QatRuntime::builder(3)
            .uniform_bits(8)
            .headroom(1.5)
            .build()
            .unwrap();
        let data = [0.37f64, -2.11, 5.9, 0.003];
        for p in 0..3 {
            let mut xs = data;
            legacy.process(p, &mut xs);
            let mut ys = data;
            built.process(p, &mut ys);
        }
        legacy.freeze().unwrap();
        built.freeze_at_step(1234).unwrap();
        for p in 0..3 {
            assert_eq!(legacy.quantizer(p), built.quantizer(p), "point {p}");
            let mut xs = data;
            legacy.process(p, &mut xs);
            let mut ys = data;
            built.process(p, &mut ys);
            assert_eq!(xs, ys, "point {p}");
        }
    }

    #[test]
    fn explicit_formats_freeze_without_calibration_data() {
        let fmt = QFormat::q(4, 4).unwrap();
        let mut qat = QatRuntime::builder(2)
            .uniform_bits(16)
            .point_format(0, fmt)
            .build()
            .unwrap();
        // Only the *calibrated* point sees data; the pinned one freezes
        // from its format alone.
        qat.process(1, &mut [1.0f64, -2.0]);
        qat.freeze_at_step(0).unwrap();
        assert_eq!(qat.point_format(0), Some(fmt));
        assert_eq!(qat.quantizer(1).unwrap().bits(), 16);
        let mut xs = [1.30f64];
        qat.process(0, &mut xs);
        assert_eq!(xs[0], 1.25); // the Q4.4 grid, data independent
    }

    #[test]
    fn scheduled_policy_picks_bits_by_freeze_step() {
        let policy = PrecisionPolicy::Scheduled {
            milestones: vec![(0, 16), (100, 8)],
        };
        assert_eq!(policy.bits_at_step(0), 16);
        assert_eq!(policy.bits_at_step(99), 16);
        assert_eq!(policy.bits_at_step(100), 8);
        let mut early = QatRuntime::builder(1)
            .policy(policy.clone())
            .build()
            .unwrap();
        let mut late = QatRuntime::builder(1).policy(policy).build().unwrap();
        early.process(0, &mut [1.0f64, -1.0]);
        late.process(0, &mut [1.0f64, -1.0]);
        early.freeze_at_step(50).unwrap();
        late.freeze_at_step(150).unwrap();
        assert_eq!(early.quantizer(0).unwrap().bits(), 16);
        assert_eq!(late.quantizer(0).unwrap().bits(), 8);
    }

    #[test]
    fn adaptive_policy_spends_bits_to_meet_target_delta() {
        let policy = PrecisionPolicy::Adaptive {
            min_bits: 4,
            max_bits: 16,
            target_delta: 1.0 / 64.0,
        };
        let mut qat = QatRuntime::builder(2).policy(policy).build().unwrap();
        // Point 0 spans [-1, 1] (span 2): needs 2/2^b <= 1/64 → b = 7.
        qat.process(0, &mut [1.0f64, -1.0]);
        // Point 1 spans [-64, 64] (span 128): needs b = 13.
        qat.process(1, &mut [64.0f64, -64.0]);
        qat.freeze_at_step(0).unwrap();
        assert_eq!(qat.quantizer(0).unwrap().bits(), 7);
        assert_eq!(qat.quantizer(1).unwrap().bits(), 13);
    }

    #[test]
    fn builder_validates_policies() {
        assert!(matches!(
            QatRuntime::builder(2).uniform_bits(0).build(),
            Err(PrecisionError::InvalidPolicy(_))
        ));
        assert!(matches!(
            QatRuntime::builder(2).uniform_bits(32).build(),
            Err(PrecisionError::InvalidPolicy(_))
        ));
        assert!(matches!(
            QatRuntime::builder(2).headroom(0.5).build(),
            Err(PrecisionError::InvalidPolicy(_))
        ));
        let fmt = QFormat::q(4, 4).unwrap();
        assert!(matches!(
            QatRuntime::builder(2).point_format(5, fmt).build(),
            Err(PrecisionError::InvalidPolicy(_))
        ));
        assert!(matches!(
            QatRuntime::builder(2)
                .point_format(0, fmt)
                .exclude_point(0)
                .build(),
            Err(PrecisionError::InvalidPolicy(_))
        ));
        assert!(matches!(
            QatRuntime::builder(2)
                .policy(PrecisionPolicy::Scheduled { milestones: vec![] })
                .build(),
            Err(PrecisionError::InvalidPolicy(_))
        ));
        assert!(matches!(
            QatRuntime::builder(2)
                .policy(PrecisionPolicy::Scheduled {
                    milestones: vec![(10, 8), (10, 16)]
                })
                .build(),
            Err(PrecisionError::InvalidPolicy(_))
        ));
        assert!(matches!(
            QatRuntime::builder(2)
                .policy(PrecisionPolicy::Adaptive {
                    min_bits: 12,
                    max_bits: 8,
                    target_delta: 0.1
                })
                .build(),
            Err(PrecisionError::InvalidPolicy(_))
        ));
        // The 32-bit weight format is a valid QFormat but not a valid
        // activation pin.
        let wide = QFormat::new(32, 20).unwrap();
        assert!(matches!(
            QatRuntime::builder(2).point_format(0, wide).build(),
            Err(PrecisionError::InvalidPolicy(_))
        ));
    }

    #[test]
    fn point_formats_report_the_frozen_grid() {
        let fmt = QFormat::q(4, 4).unwrap();
        let mut qat = QatRuntime::builder(3)
            .uniform_bits(8)
            .point_format(1, fmt)
            .exclude_point(2)
            .build()
            .unwrap();
        assert_eq!(qat.point_formats(), vec![None, None, None]);
        qat.process(0, &mut [-2.0f64, 2.0]);
        qat.process(2, &mut [1.0f64]);
        qat.freeze_at_step(0).unwrap();
        let formats = qat.point_formats();
        assert_eq!(formats[1], Some(fmt));
        assert_eq!(formats[2], None, "excluded point stays pass-through");
        assert_eq!(formats[0].unwrap().total_bits(), 8);
    }

    #[test]
    fn disabled_runtime_is_identity() {
        let mut qat = QatRuntime::disabled(3);
        assert_eq!(qat.mode(), QatMode::Off);
        let mut xs = [0.5f64];
        qat.process(2, &mut xs);
        assert_eq!(xs[0], 0.5);
        assert_eq!(qat.monitor(2).count(), 0);
    }
}
