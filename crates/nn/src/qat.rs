//! The quantization-aware-training runtime of Algorithm 1.

use fixar_fixed::{AffineQuantizer, QuantError, RangeMonitor, Scalar};

/// Phase of the QAT schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QatMode {
    /// No monitoring, no quantization (plain full-precision training, and
    /// the float/pure-fixed baselines of Fig. 7).
    #[default]
    Off,
    /// Full-precision compute while min/max of every activation point is
    /// captured (the `t < d` branch of Algorithm 1).
    Calibrate,
    /// Activations are projected onto the n-bit affine grid before use
    /// (the `t ≥ d` branch).
    Quantize,
}

/// Per-network QAT state: one activation point per layer boundary.
///
/// Point `0` is the network input; point `l+1` is the post-activation
/// output of layer `l`. The runtime is driven by
/// [`Mlp::forward_qat`](crate::Mlp::forward_qat); the training loop only
/// switches modes and calls [`QatRuntime::freeze`] when the quantization
/// delay elapses.
///
/// # Example
///
/// ```
/// use fixar_nn::{QatMode, QatRuntime};
///
/// let mut qat = QatRuntime::new(3, 16);
/// assert_eq!(qat.mode(), QatMode::Calibrate);
/// // ... run forward passes, then:
/// // qat.freeze()?;
/// ```
#[derive(Debug, Clone)]
pub struct QatRuntime {
    mode: QatMode,
    bits: u32,
    headroom: f64,
    monitors: Vec<RangeMonitor>,
    quantizers: Vec<Option<AffineQuantizer>>,
    excluded: Vec<bool>,
}

impl QatRuntime {
    /// Creates a runtime in `Calibrate` mode with `num_points` activation
    /// points (a network with `L` layers needs `L + 1`) quantizing to
    /// `bits` bits after freezing.
    pub fn new(num_points: usize, bits: u32) -> Self {
        Self {
            mode: QatMode::Calibrate,
            bits,
            headroom: 1.0,
            monitors: vec![RangeMonitor::new(); num_points],
            quantizers: vec![None; num_points],
            excluded: vec![false; num_points],
        }
    }

    /// Creates a permanently-off runtime (baselines and plain inference).
    pub fn disabled(num_points: usize) -> Self {
        Self {
            mode: QatMode::Off,
            bits: 0,
            headroom: 1.0,
            monitors: vec![RangeMonitor::new(); num_points],
            quantizers: vec![None; num_points],
            excluded: vec![false; num_points],
        }
    }

    /// Sets the calibration headroom: frozen ranges are widened by this
    /// factor (about zero), so activations that drift moderately beyond
    /// their calibration-window extremes still quantize instead of
    /// clamping. A fixed-range hardware design always budgets headroom;
    /// `1.0` (the default) freezes the observed range exactly.
    ///
    /// # Panics
    ///
    /// Panics if `headroom < 1.0`.
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        assert!(headroom >= 1.0, "headroom must be at least 1.0");
        self.headroom = headroom;
        self
    }

    /// Excludes a point from quantization (it stays full-precision after
    /// the freeze). The DDPG agent excludes each network's *final output*
    /// point: the critic's Q-value is a regression output, not a hidden
    /// activation — its range keeps drifting as the policy improves, and
    /// clamping it to a frozen range strangles TD learning. (The actor's
    /// tanh output re-enters the critic through its quantized input point
    /// anyway.)
    ///
    /// # Panics
    ///
    /// Panics if `point >= num_points()`.
    pub fn exclude_point(&mut self, point: usize) {
        self.excluded[point] = true;
    }

    /// Current mode.
    #[inline]
    pub fn mode(&self) -> QatMode {
        self.mode
    }

    /// Number of activation points.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.monitors.len()
    }

    /// Quantizer bit width.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Captured range monitor of a point (read-only diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `point >= num_points()`.
    pub fn monitor(&self, point: usize) -> &RangeMonitor {
        &self.monitors[point]
    }

    /// Frozen quantizer of a point, if any.
    ///
    /// # Panics
    ///
    /// Panics if `point >= num_points()`.
    pub fn quantizer(&self, point: usize) -> Option<&AffineQuantizer> {
        self.quantizers[point].as_ref()
    }

    /// `true` once any activation point has calibration data — freezing
    /// before this would be meaningless.
    pub fn has_observations(&self) -> bool {
        self.monitors.iter().any(|m| m.count() > 0)
    }

    /// Ends calibration: builds one [`AffineQuantizer`] per point from the
    /// captured ranges and switches to `Quantize` mode.
    ///
    /// Points whose monitor captured no usable range (e.g. an
    /// always-zero ReLU lane) are left unquantized and pass through.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if *no* point captured a usable range —
    /// freezing before any calibration forward pass is a protocol bug.
    pub fn freeze(&mut self) -> Result<(), QuantError> {
        let mut any = false;
        for ((m, q), &excluded) in self
            .monitors
            .iter()
            .zip(&mut self.quantizers)
            .zip(&self.excluded)
        {
            if excluded {
                *q = None;
                // An excluded point with data still counts as calibrated.
                any |= m.count() > 0;
                continue;
            }
            // Widen away from zero only, so asymmetric (e.g. post-ReLU)
            // ranges keep their tight side and zero stays a code point.
            let h = self.headroom.max(1.0);
            let widened = m.range().map(|(lo, hi)| {
                let lo = if lo < 0.0 { lo * h } else { lo };
                let hi = if hi > 0.0 { hi * h } else { hi };
                (lo, hi)
            });
            match widened.map(|(lo, hi)| AffineQuantizer::from_range(lo, hi, self.bits)) {
                Some(Ok(quant)) => {
                    *q = Some(quant);
                    any = true;
                }
                _ => *q = None,
            }
        }
        if !any {
            return Err(QuantError::DegenerateRange {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            });
        }
        self.mode = QatMode::Quantize;
        Ok(())
    }

    /// Processes one activation point in place according to the mode.
    /// Called by the network forward pass.
    pub fn process<S: Scalar>(&mut self, point: usize, xs: &mut [S]) {
        match self.mode {
            QatMode::Off => {}
            QatMode::Calibrate => self.monitors[point].observe_slice(xs),
            QatMode::Quantize => {
                if let Some(q) = &self.quantizers[point] {
                    q.fake_quantize_slice(xs);
                }
            }
        }
    }

    /// Read-only variant of [`QatRuntime::process`]: applies frozen
    /// quantizers but records nothing. In `Calibrate` mode this is a
    /// no-op — thread-parallel callers calibrate into per-worker clones
    /// and merge them back with [`QatRuntime::merge_from`].
    pub fn apply<S: Scalar>(&self, point: usize, xs: &mut [S]) {
        if self.mode == QatMode::Quantize {
            if let Some(q) = &self.quantizers[point] {
                q.fake_quantize_slice(xs);
            }
        }
    }

    /// Folds another runtime's captured ranges into this one (the
    /// reduction step after per-worker calibration). Quantizers and mode
    /// are not affected.
    ///
    /// # Panics
    ///
    /// Panics if the runtimes have different point counts.
    pub fn merge_from(&mut self, other: &QatRuntime) {
        assert_eq!(
            self.monitors.len(),
            other.monitors.len(),
            "merging runtimes with different point counts"
        );
        for (mine, theirs) in self.monitors.iter_mut().zip(&other.monitors) {
            mine.merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_fixed::Fx32;

    #[test]
    fn calibrate_then_freeze_then_quantize() {
        let mut qat = QatRuntime::new(2, 8);
        let mut xs = [Fx32::from_f64(1.0), Fx32::from_f64(-2.0)];
        qat.process(0, &mut xs);
        qat.process(1, &mut xs);
        assert_eq!(qat.monitor(0).count(), 2);
        // Calibration never mutates the data.
        assert_eq!(xs[0].to_f64(), 1.0);

        qat.freeze().unwrap();
        assert_eq!(qat.mode(), QatMode::Quantize);
        let mut ys = [Fx32::from_f64(0.333), Fx32::from_f64(-1.111)];
        let before: Vec<f64> = ys.iter().map(|v| v.to_f64()).collect();
        qat.process(0, &mut ys);
        let delta = qat.quantizer(0).unwrap().delta();
        for (y, b) in ys.iter().zip(before) {
            assert!((y.to_f64() - b).abs() <= delta + 1e-6);
        }
    }

    #[test]
    fn freeze_without_observations_fails() {
        let mut qat = QatRuntime::new(2, 8);
        assert!(qat.freeze().is_err());
        assert_eq!(qat.mode(), QatMode::Calibrate);
    }

    #[test]
    fn dead_points_pass_through_after_freeze() {
        let mut qat = QatRuntime::new(2, 8);
        let mut xs = [1.0f64, 2.0];
        qat.process(0, &mut xs); // point 1 never observed
        qat.freeze().unwrap();
        assert!(qat.quantizer(0).is_some());
        assert!(qat.quantizer(1).is_none());
        let mut ys = [0.12345f64];
        qat.process(1, &mut ys);
        assert_eq!(ys[0], 0.12345); // untouched
    }

    #[test]
    fn excluded_points_stay_full_precision() {
        let mut qat = QatRuntime::new(2, 8);
        qat.exclude_point(1);
        let mut xs = [1.0f64, -2.0];
        qat.process(0, &mut xs);
        qat.process(1, &mut xs);
        qat.freeze().unwrap();
        assert!(qat.quantizer(0).is_some());
        assert!(
            qat.quantizer(1).is_none(),
            "excluded point must not quantize"
        );
        let mut ys = [0.123456f64];
        qat.process(1, &mut ys);
        assert_eq!(ys[0], 0.123456);
    }

    #[test]
    fn headroom_widens_frozen_ranges_away_from_zero() {
        let mut base = QatRuntime::new(1, 8);
        let mut wide = QatRuntime::new(1, 8).with_headroom(2.0);
        let mut xs = [-1.0f64, 3.0];
        base.process(0, &mut xs);
        wide.process(0, &mut xs);
        base.freeze().unwrap();
        wide.freeze().unwrap();
        // Base clamps at the observed max; the widened runtime still
        // quantizes a value 1.5× beyond it.
        let probe = 4.5f64;
        let base_out = base.quantizer(0).unwrap().fake_quantize(probe);
        let wide_out = wide.quantizer(0).unwrap().fake_quantize(probe);
        assert!(base_out < 3.1, "base should clamp: {base_out}");
        assert!(
            (wide_out - probe).abs() < 0.1,
            "widened should cover: {wide_out}"
        );
        // δ widens proportionally (2× range → 2× step at equal bits).
        let ratio = wide.quantizer(0).unwrap().delta() / base.quantizer(0).unwrap().delta();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn headroom_below_one_rejected() {
        let _ = QatRuntime::new(1, 8).with_headroom(0.5);
    }

    #[test]
    fn apply_is_read_only_during_calibration() {
        let qat = QatRuntime::new(1, 8);
        let mut xs = [1.0f64];
        qat.apply(0, &mut xs);
        assert_eq!(qat.monitor(0).count(), 0, "apply must not record");
        assert_eq!(xs[0], 1.0);
    }

    #[test]
    fn merge_from_combines_worker_monitors() {
        let mut main = QatRuntime::new(1, 8);
        let mut w1 = main.clone();
        let mut w2 = main.clone();
        w1.process(0, &mut [1.0f64, -3.0]);
        w2.process(0, &mut [5.0f64]);
        main.merge_from(&w1);
        main.merge_from(&w2);
        assert_eq!(main.monitor(0).range(), Some((-3.0, 5.0)));
        assert_eq!(main.monitor(0).count(), 3);
    }

    #[test]
    fn disabled_runtime_is_identity() {
        let mut qat = QatRuntime::disabled(3);
        assert_eq!(qat.mode(), QatMode::Off);
        let mut xs = [0.5f64];
        qat.process(2, &mut xs);
        assert_eq!(xs[0], 0.5);
        assert_eq!(qat.monitor(2).count(), 0);
    }
}
