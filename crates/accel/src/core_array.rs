//! The adaptive array processing core (paper §V-A).

use fixar_fixed::Fx32;
use fixar_tensor::Matrix;

use crate::pe::{
    round_half_product_to_fx32, round_product_to_fx32, ConfigurablePe, HalfAct, PeMode,
};

/// One adaptive array processing core: a `rows × cols` grid of
/// [`ConfigurablePe`]s with an activation line buffer feeding row
/// broadcasts and per-column accumulators below the array.
///
/// The structural execution path here runs real matrix-vector products
/// through the PE datapath in the paper's **column-wise decomposition**
/// order: for each matrix column, the broadcast activation element
/// multiplies the whole column and the partial-sum vector accumulates
/// into the output. This is the order the `fixar-tensor` kernels promise,
/// so core output is bit-exact against the software reference (verified
/// by tests and the cross-crate equivalence suite).
///
/// # Example
///
/// ```
/// use fixar_accel::AapCore;
/// use fixar_fixed::Fx32;
/// use fixar_tensor::Matrix;
///
/// let core = AapCore::new(16, 16);
/// let w: Matrix<Fx32> = Matrix::from_fn(4, 3, |r, c| Fx32::from_f64((r + c) as f64 * 0.1));
/// let x = vec![Fx32::from_f64(1.0); 3];
/// let mut y = vec![Fx32::from_f64(0.0); 4];
/// core.mvm_columns(&w, &x, 0, 1, &mut y); // all columns, single core
/// ```
#[derive(Debug, Clone)]
pub struct AapCore {
    rows: usize,
    cols: usize,
    pe: ConfigurablePe,
}

impl AapCore {
    /// Creates a core with the given PE-array geometry (paper: 16×16).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "PE array needs positive dimensions");
        Self {
            rows,
            cols,
            pe: ConfigurablePe::new(PeMode::Full),
        }
    }

    /// PE-array rows (matrix columns mapped per pass).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// PE-array columns (output elements produced per pass).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of PEs in the array.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Reconfigures every PE's datapath mode.
    pub fn set_mode(&mut self, mode: PeMode) {
        self.pe.set_mode(mode);
    }

    /// Current datapath mode.
    pub fn mode(&self) -> PeMode {
        self.pe.mode()
    }

    /// Executes this core's share of a full-precision MVM `y += W·x`,
    /// taking matrix columns `start, start + stride, start + 2·stride, …`
    /// (the paper's intra-layer interleaving; `stride` = number of
    /// cores). Accumulation per output is in ascending column order
    /// through the PE datapath.
    ///
    /// # Panics
    ///
    /// Panics if operand lengths disagree with the matrix shape.
    pub fn mvm_columns(
        &self,
        w: &Matrix<Fx32>,
        x: &[Fx32],
        start: usize,
        stride: usize,
        y: &mut [Fx32],
    ) {
        assert_eq!(x.len(), w.cols(), "activation length mismatch");
        assert_eq!(y.len(), w.rows(), "output length mismatch");
        assert!(stride > 0, "stride must be positive");
        let mut j = start;
        while j < w.cols() {
            let xj = x[j];
            for i in 0..w.rows() {
                let prod = self.pe.mac_full(w[(i, j)].raw(), xj.raw());
                y[i] += round_product_to_fx32(prod);
            }
            j += stride;
        }
    }

    /// Half-precision variant: activations arrive as 16-bit lanes
    /// (`Q6.10`), and each PE produces two lane products per cycle. The
    /// lanes carry two *consecutive matrix columns*, which is how packing
    /// two 16-bit activations into one 32-bit word doubles throughput
    /// without touching the memory layout.
    ///
    /// # Panics
    ///
    /// Panics if operand lengths disagree with the matrix shape.
    pub fn mvm_columns_half(
        &self,
        w: &Matrix<Fx32>,
        x: &[HalfAct],
        start: usize,
        stride: usize,
        y: &mut [Fx32],
    ) {
        assert_eq!(x.len(), w.cols(), "activation length mismatch");
        assert_eq!(y.len(), w.rows(), "output length mismatch");
        assert!(stride > 0, "stride must be positive");
        // Column pairs (2j, 2j+1) share a PE pass.
        let mut pair = start;
        while 2 * pair < w.cols() {
            let j0 = 2 * pair;
            let j1 = j0 + 1;
            let a0 = x[j0];
            let a1 = if j1 < w.cols() { x[j1] } else { HalfAct::ZERO };
            for i in 0..w.rows() {
                let w0 = w[(i, j0)].raw();
                let (p0, _) = self.pe.mac_half(w0, a0.raw(), 0);
                y[i] += round_half_product_to_fx32(p0);
                if j1 < w.cols() {
                    let w1 = w[(i, j1)].raw();
                    let (_, p1) = self.pe.mac_half(w1, 0, a1.raw());
                    y[i] += round_half_product_to_fx32(p1);
                }
            }
            pair += stride;
        }
    }

    /// Executes this core's share of the **transposed** MVM
    /// `y += Wᵀ·e` — the back-propagation dataflow. The weight memory
    /// distributes each *row* of `W` to a PE row (instead of a column),
    /// which is how the paper solves the matrix-transpose problem with
    /// no data movement: the same 512-bit row reads feed both passes.
    /// Rows are interleaved across cores `start, start + stride, …`.
    ///
    /// # Panics
    ///
    /// Panics if operand lengths disagree with the matrix shape.
    pub fn mvm_rows(
        &self,
        w: &Matrix<Fx32>,
        e: &[Fx32],
        start: usize,
        stride: usize,
        y: &mut [Fx32],
    ) {
        assert_eq!(e.len(), w.rows(), "error-vector length mismatch");
        assert_eq!(y.len(), w.cols(), "output length mismatch");
        assert!(stride > 0, "stride must be positive");
        let mut i = start;
        while i < w.rows() {
            let ei = e[i];
            for j in 0..w.cols() {
                let prod = self.pe.mac_full(w[(i, j)].raw(), ei.raw());
                y[j] += round_product_to_fx32(prod);
            }
            i += stride;
        }
    }

    /// Tile passes this core needs for a `p × q` full-precision MVM when
    /// `n_cores` share the columns — the unit of the cycle model (one
    /// `rows × cols` tile per cycle).
    pub fn tiles_for_mvm(&self, p: usize, q: usize, n_cores: usize, mode: PeMode) -> u64 {
        let col_width = match mode {
            PeMode::Full => self.rows,
            PeMode::Half => self.rows * 2,
        };
        let col_groups = q.div_ceil(col_width * n_cores);
        let row_groups = p.div_ceil(self.cols);
        (col_groups * row_groups) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(p: usize, q: usize) -> Matrix<Fx32> {
        Matrix::from_fn(p, q, |r, c| {
            Fx32::from_f64(((r * 7 + c * 3) % 13) as f64 * 0.05 - 0.3)
        })
    }

    #[test]
    fn single_core_matches_reference_gemv_exactly() {
        let w = test_matrix(12, 9);
        let x: Vec<Fx32> = (0..9)
            .map(|i| Fx32::from_f64(i as f64 * 0.2 - 0.8))
            .collect();
        let core = AapCore::new(16, 16);
        let mut y = vec![Fx32::ZERO; 12];
        core.mvm_columns(&w, &x, 0, 1, &mut y);
        let reference = w.gemv_alloc(&x).unwrap();
        assert_eq!(y, reference, "structural PE path must be bit-exact");
    }

    #[test]
    fn two_cores_interleaved_match_reference_without_saturation() {
        let w = test_matrix(20, 17);
        let x: Vec<Fx32> = (0..17)
            .map(|i| Fx32::from_f64((i as f64 * 0.11).sin()))
            .collect();
        let core = AapCore::new(16, 16);
        let mut y0 = vec![Fx32::ZERO; 20];
        let mut y1 = vec![Fx32::ZERO; 20];
        core.mvm_columns(&w, &x, 0, 2, &mut y0);
        core.mvm_columns(&w, &x, 1, 2, &mut y1);
        // Cross-core accumulation in core order.
        let combined: Vec<Fx32> = y0.iter().zip(&y1).map(|(&a, &b)| a + b).collect();
        let reference = w.gemv_alloc(&x).unwrap();
        assert_eq!(combined, reference);
    }

    #[test]
    fn half_mode_tracks_full_mode_within_activation_quantization() {
        let w = test_matrix(8, 10);
        let xf: Vec<f64> = (0..10).map(|i| (i as f64 * 0.37).cos()).collect();
        let x32: Vec<Fx32> = xf.iter().map(|&v| Fx32::from_f64(v)).collect();
        let x16: Vec<HalfAct> = xf.iter().map(|&v| HalfAct::from_f64(v)).collect();
        let core = AapCore::new(16, 16);
        let mut y_full = vec![Fx32::ZERO; 8];
        let mut y_half = vec![Fx32::ZERO; 8];
        core.mvm_columns(&w, &x32, 0, 1, &mut y_full);
        core.mvm_columns_half(&w, &x16, 0, 1, &mut y_half);
        // Half-precision activations carry ~1e-3 quantization noise; the
        // accumulated deviation stays within cols × ulp16 × max|w|.
        for (f, h) in y_full.iter().zip(&y_half) {
            assert!(
                (f.to_f64() - h.to_f64()).abs() < 10.0 * 0.3 / 1024.0,
                "full={f} half={h}"
            );
        }
    }

    #[test]
    fn odd_column_count_is_handled_in_half_mode() {
        let w = test_matrix(4, 7);
        let x: Vec<HalfAct> = (0..7).map(|i| HalfAct::from_f64(i as f64 * 0.1)).collect();
        let core = AapCore::new(16, 16);
        let mut y = vec![Fx32::ZERO; 4];
        core.mvm_columns_half(&w, &x, 0, 1, &mut y);
        // Compare against a full-precision run of the dequantized lanes.
        let xd: Vec<Fx32> = x.iter().map(|v| Fx32::from_f64(v.to_f64())).collect();
        let mut yf = vec![Fx32::ZERO; 4];
        core.mvm_columns(&w, &xd, 0, 1, &mut yf);
        for (a, b) in y.iter().zip(&yf) {
            assert!((a.to_f64() - b.to_f64()).abs() < 1e-4);
        }
    }

    #[test]
    fn transposed_path_matches_reference_gemv_t_exactly() {
        let w = test_matrix(14, 11);
        let e: Vec<Fx32> = (0..14)
            .map(|i| Fx32::from_f64((i as f64 * 0.23).sin()))
            .collect();
        let core = AapCore::new(16, 16);
        let mut y = vec![Fx32::ZERO; 11];
        core.mvm_rows(&w, &e, 0, 1, &mut y);
        let reference = w.gemv_t_alloc(&e).unwrap();
        assert_eq!(y, reference, "transposed PE path must be bit-exact");
    }

    #[test]
    fn transposed_path_interleaves_across_cores() {
        let w = test_matrix(21, 9);
        let e: Vec<Fx32> = (0..21)
            .map(|i| Fx32::from_f64((i as f64 * 0.17).cos()))
            .collect();
        let core = AapCore::new(16, 16);
        let mut y0 = vec![Fx32::ZERO; 9];
        let mut y1 = vec![Fx32::ZERO; 9];
        core.mvm_rows(&w, &e, 0, 2, &mut y0);
        core.mvm_rows(&w, &e, 1, 2, &mut y1);
        let combined: Vec<Fx32> = y0.iter().zip(&y1).map(|(&a, &b)| a + b).collect();
        let reference = w.gemv_t_alloc(&e).unwrap();
        assert_eq!(combined, reference);
    }

    #[test]
    fn tile_counts_match_hand_computation() {
        let core = AapCore::new(16, 16);
        // 400×300 layer, 2 cores, full precision:
        // ceil(400/16) × ceil(300/(16·2)) = 25 × 10.
        assert_eq!(core.tiles_for_mvm(400, 300, 2, PeMode::Full), 250);
        // Single core: 25 × ceil(300/16) = 25 × 19.
        assert_eq!(core.tiles_for_mvm(400, 300, 1, PeMode::Full), 475);
        // Half mode halves the column groups: 25 × ceil(300/32) = 25 × 10.
        assert_eq!(core.tiles_for_mvm(400, 300, 1, PeMode::Half), 250);
        // Tiny layers still cost one tile.
        assert_eq!(core.tiles_for_mvm(1, 1, 2, PeMode::Full), 1);
    }

    #[test]
    fn pe_count_and_mode_register() {
        let mut core = AapCore::new(16, 16);
        assert_eq!(core.pe_count(), 256);
        core.set_mode(PeMode::Half);
        assert_eq!(core.mode(), PeMode::Half);
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn zero_geometry_rejected() {
        let _ = AapCore::new(0, 16);
    }
}
