//! Parametric FPGA resource model — regenerates Table I.
//!
//! Component costs are linear in their driving design parameter and
//! calibrated so the paper's design point (2 cores × 256 PEs, 2.1 MB of
//! on-chip model state, 16 Adam lanes) reproduces Table I exactly. The
//! host-interface blocks (kernel interface, HBM controller, PCIe DMA) are
//! fixed IP and do not scale.

use crate::accelerator::AccelConfig;

/// One component's (or total) resource footprint.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceUsage {
    /// Lookup tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// BRAM36 blocks.
    pub bram: f64,
    /// UltraRAM blocks.
    pub uram: f64,
    /// DSP slices.
    pub dsp: f64,
}

impl ResourceUsage {
    fn add(&mut self, other: ResourceUsage) {
        self.lut += other.lut;
        self.ff += other.ff;
        self.bram += other.bram;
        self.uram += other.uram;
        self.dsp += other.dsp;
    }
}

/// The Alveo U50 resource budget (XCU50 device), back-computed from the
/// paper's utilization percentages.
pub const U50_BUDGET: ResourceUsage = ResourceUsage {
    lut: 870_000.0,
    ff: 1_740_000.0,
    bram: 1_344.0,
    uram: 640.0,
    dsp: 5_933.0,
};

// Calibration constants: Table I values at the default design point.
const PE_COUNT_REF: f64 = 512.0;
const MEM_BYTES_REF: f64 = 2_300_000.0; // weight + gradient capacity
const ADAM_LANES_REF: f64 = 16.0;
const CORES_REF: f64 = 2.0;

/// Parametric resource estimator.
///
/// # Example
///
/// ```
/// use fixar_accel::{AccelConfig, ResourceModel, U50_BUDGET};
///
/// let model = ResourceModel::new(AccelConfig::default());
/// let total = model.total();
/// assert!(total.lut < U50_BUDGET.lut);
/// ```
#[derive(Debug, Clone)]
pub struct ResourceModel {
    cfg: AccelConfig,
}

impl ResourceModel {
    /// Builds the estimator for a design point.
    pub fn new(cfg: AccelConfig) -> Self {
        Self { cfg }
    }

    /// Per-component estimates in Table I's row order.
    pub fn components(&self) -> Vec<(&'static str, ResourceUsage)> {
        let pe_scale = self.cfg.pe_count_total() as f64 / PE_COUNT_REF;
        let mem_scale =
            (self.cfg.weight_mem_bytes + self.cfg.gradient_mem_bytes) as f64 / MEM_BYTES_REF;
        let adam_scale = self.cfg.adam_lanes as f64 / ADAM_LANES_REF;
        let core_scale = self.cfg.n_cores as f64 / CORES_REF;
        vec![
            (
                "PEs",
                ResourceUsage {
                    lut: 216_300.0 * pe_scale,
                    ff: 161_800.0 * pe_scale,
                    bram: 0.0,
                    uram: 0.0,
                    dsp: 2_295.0 * pe_scale,
                },
            ),
            (
                "On-chip Memory",
                ResourceUsage {
                    lut: 10_300.0 * mem_scale,
                    ff: 0.0,
                    bram: 584.0 * mem_scale,
                    uram: 128.0 * mem_scale,
                    dsp: 0.0,
                },
            ),
            (
                "Adam Optimizer",
                ResourceUsage {
                    lut: 46_700.0 * adam_scale,
                    ff: 70_200.0 * adam_scale,
                    bram: 0.0,
                    uram: 0.0,
                    dsp: 3.0 * adam_scale,
                },
            ),
            (
                "Control Unit",
                ResourceUsage {
                    lut: 69_000.0 * core_scale,
                    ff: 45_400.0 * core_scale,
                    bram: 0.0,
                    uram: 0.0,
                    dsp: 0.0,
                },
            ),
            (
                "Kernel Interface",
                ResourceUsage {
                    lut: 68_800.0,
                    ff: 15_200.0,
                    bram: 12.0,
                    uram: 0.0,
                    dsp: 0.0,
                },
            ),
            (
                "HBM Interface",
                ResourceUsage {
                    lut: 8_200.0,
                    ff: 13_100.0,
                    bram: 2.0,
                    uram: 0.0,
                    dsp: 0.0,
                },
            ),
            (
                "PCIe DMA",
                ResourceUsage {
                    lut: 88_800.0,
                    ff: 103_200.0,
                    bram: 176.0,
                    uram: 0.0,
                    dsp: 4.0,
                },
            ),
        ]
    }

    /// Summed footprint.
    pub fn total(&self) -> ResourceUsage {
        let mut total = ResourceUsage::default();
        for (_, usage) in self.components() {
            total.add(usage);
        }
        total
    }

    /// Utilization fractions against a device budget, in Table I's
    /// column order `(LUT, FF, BRAM, URAM, DSP)`.
    pub fn utilization(&self, budget: &ResourceUsage) -> (f64, f64, f64, f64, f64) {
        let t = self.total();
        (
            t.lut / budget.lut,
            t.ff / budget.ff,
            t.bram / budget.bram,
            t.uram / budget.uram,
            t.dsp / budget.dsp,
        )
    }

    /// `true` if the design fits the budget in every resource class.
    pub fn fits(&self, budget: &ResourceUsage) -> bool {
        let (lut, ff, bram, uram, dsp) = self.utilization(budget);
        lut <= 1.0 && ff <= 1.0 && bram <= 1.0 && uram <= 1.0 && dsp <= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_design_point_reproduces_table1_totals() {
        let model = ResourceModel::new(AccelConfig::default());
        let t = model.total();
        // Table I totals: 508.1K LUT, 408.9K FF, 774 BRAM, 128 URAM,
        // 2302 DSP (±0.5% for the capacity-vs-usage rounding).
        assert!(
            (t.lut - 508_100.0).abs() / 508_100.0 < 0.005,
            "lut={}",
            t.lut
        );
        assert!((t.ff - 408_900.0).abs() / 408_900.0 < 0.005, "ff={}", t.ff);
        assert!((t.bram - 774.0).abs() / 774.0 < 0.005, "bram={}", t.bram);
        assert!((t.uram - 128.0).abs() / 128.0 < 0.005, "uram={}", t.uram);
        assert!((t.dsp - 2_302.0).abs() / 2_302.0 < 0.005, "dsp={}", t.dsp);
    }

    #[test]
    fn default_utilization_matches_paper_percentages() {
        let model = ResourceModel::new(AccelConfig::default());
        let (lut, _, bram, uram, dsp) = model.utilization(&U50_BUDGET);
        assert!((lut - 0.584).abs() < 0.01, "lut util {lut}");
        assert!((bram - 0.576).abs() < 0.01, "bram util {bram}");
        assert!((uram - 0.20).abs() < 0.01, "uram util {uram}");
        assert!((dsp - 0.388).abs() < 0.01, "dsp util {dsp}");
        assert!(model.fits(&U50_BUDGET));
    }

    #[test]
    fn pe_resources_scale_with_core_count() {
        let cfg = AccelConfig {
            n_cores: 4,
            ..AccelConfig::default()
        };
        let four = ResourceModel::new(cfg);
        let two = ResourceModel::new(AccelConfig::default());
        let pe4 = four.components()[0].1;
        let pe2 = two.components()[0].1;
        assert!((pe4.dsp / pe2.dsp - 2.0).abs() < 1e-9);
        let (lut4, ..) = four.utilization(&U50_BUDGET);
        let (lut2, ..) = two.utilization(&U50_BUDGET);
        assert!(lut4 > lut2, "more cores must cost more LUTs");
        // Eight cores are far beyond the U50's LUT budget (the paper
        // stops at N = 2 for SLR-crossing reasons well before that).
        let cfg8 = AccelConfig {
            n_cores: 8,
            ..AccelConfig::default()
        };
        assert!(
            !ResourceModel::new(cfg8).fits(&U50_BUDGET),
            "8 cores should not fit the U50"
        );
    }

    #[test]
    fn host_interface_blocks_are_fixed() {
        let cfg = AccelConfig {
            n_cores: 4,
            adam_lanes: 32,
            ..AccelConfig::default()
        };
        let scaled = ResourceModel::new(cfg);
        let base = ResourceModel::new(AccelConfig::default());
        for name in ["Kernel Interface", "HBM Interface", "PCIe DMA"] {
            let s = scaled
                .components()
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1;
            let b = base
                .components()
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1;
            assert_eq!(s.lut, b.lut, "{name} must not scale");
        }
    }

    #[test]
    fn component_rows_match_table1() {
        let model = ResourceModel::new(AccelConfig::default());
        let rows = model.components();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].0, "PEs");
        assert_eq!(rows[0].1.dsp, 2_295.0);
        assert_eq!(rows[2].1.dsp, 3.0); // Adam
        assert_eq!(rows[6].1.bram, 176.0); // PCIe DMA
    }
}
