//! Parametric FPGA resource model — regenerates Table I.
//!
//! Component costs are linear in their driving design parameter and
//! calibrated so the paper's design point (2 cores × 256 PEs, 2.1 MB of
//! on-chip model state, 16 Adam lanes) reproduces Table I exactly. The
//! host-interface blocks (kernel interface, HBM controller, PCIe DMA) are
//! fixed IP and do not scale.
//!
//! Beyond the fixed Table I design point, [`ResourceModel`] also prices
//! **per-layer precision plans** ([`ResourceModel::price_layer_formats`]):
//! a network described as one [`LayerFormat`] per layer (dimensions plus
//! the frozen [`QFormat`] its activations and weights carry, `None` for
//! full 32-bit) maps to a MAC datapath width, a PE-array footprint at
//! that width, and an on-chip weight-memory footprint at the per-layer
//! storage widths — the hardware face of the `fixar-nn` precision-policy
//! axis.

use fixar_fixed::QFormat;

use crate::accelerator::AccelConfig;

/// One component's (or total) resource footprint.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceUsage {
    /// Lookup tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// BRAM36 blocks.
    pub bram: f64,
    /// UltraRAM blocks.
    pub uram: f64,
    /// DSP slices.
    pub dsp: f64,
}

impl ResourceUsage {
    fn add(&mut self, other: ResourceUsage) {
        self.lut += other.lut;
        self.ff += other.ff;
        self.bram += other.bram;
        self.uram += other.uram;
        self.dsp += other.dsp;
    }
}

/// The Alveo U50 resource budget (XCU50 device), back-computed from the
/// paper's utilization percentages.
pub const U50_BUDGET: ResourceUsage = ResourceUsage {
    lut: 870_000.0,
    ff: 1_740_000.0,
    bram: 1_344.0,
    uram: 640.0,
    dsp: 5_933.0,
};

// Calibration constants: Table I values at the default design point.
const PE_COUNT_REF: f64 = 512.0;
const MEM_BYTES_REF: f64 = 2_300_000.0; // weight + gradient capacity
const ADAM_LANES_REF: f64 = 16.0;
const CORES_REF: f64 = 2.0;

/// Parametric resource estimator.
///
/// # Example
///
/// ```
/// use fixar_accel::{AccelConfig, ResourceModel, U50_BUDGET};
///
/// let model = ResourceModel::new(AccelConfig::default());
/// let total = model.total();
/// assert!(total.lut < U50_BUDGET.lut);
/// ```
#[derive(Debug, Clone)]
pub struct ResourceModel {
    cfg: AccelConfig,
}

impl ResourceModel {
    /// Builds the estimator for a design point.
    pub fn new(cfg: AccelConfig) -> Self {
        Self { cfg }
    }

    /// Per-component estimates in Table I's row order.
    pub fn components(&self) -> Vec<(&'static str, ResourceUsage)> {
        let pe_scale = self.cfg.pe_count_total() as f64 / PE_COUNT_REF;
        let mem_scale =
            (self.cfg.weight_mem_bytes + self.cfg.gradient_mem_bytes) as f64 / MEM_BYTES_REF;
        let adam_scale = self.cfg.adam_lanes as f64 / ADAM_LANES_REF;
        let core_scale = self.cfg.n_cores as f64 / CORES_REF;
        vec![
            (
                "PEs",
                ResourceUsage {
                    lut: 216_300.0 * pe_scale,
                    ff: 161_800.0 * pe_scale,
                    bram: 0.0,
                    uram: 0.0,
                    dsp: 2_295.0 * pe_scale,
                },
            ),
            (
                "On-chip Memory",
                ResourceUsage {
                    lut: 10_300.0 * mem_scale,
                    ff: 0.0,
                    bram: 584.0 * mem_scale,
                    uram: 128.0 * mem_scale,
                    dsp: 0.0,
                },
            ),
            (
                "Adam Optimizer",
                ResourceUsage {
                    lut: 46_700.0 * adam_scale,
                    ff: 70_200.0 * adam_scale,
                    bram: 0.0,
                    uram: 0.0,
                    dsp: 3.0 * adam_scale,
                },
            ),
            (
                "Control Unit",
                ResourceUsage {
                    lut: 69_000.0 * core_scale,
                    ff: 45_400.0 * core_scale,
                    bram: 0.0,
                    uram: 0.0,
                    dsp: 0.0,
                },
            ),
            (
                "Kernel Interface",
                ResourceUsage {
                    lut: 68_800.0,
                    ff: 15_200.0,
                    bram: 12.0,
                    uram: 0.0,
                    dsp: 0.0,
                },
            ),
            (
                "HBM Interface",
                ResourceUsage {
                    lut: 8_200.0,
                    ff: 13_100.0,
                    bram: 2.0,
                    uram: 0.0,
                    dsp: 0.0,
                },
            ),
            (
                "PCIe DMA",
                ResourceUsage {
                    lut: 88_800.0,
                    ff: 103_200.0,
                    bram: 176.0,
                    uram: 0.0,
                    dsp: 4.0,
                },
            ),
        ]
    }

    /// Summed footprint.
    pub fn total(&self) -> ResourceUsage {
        let mut total = ResourceUsage::default();
        for (_, usage) in self.components() {
            total.add(usage);
        }
        total
    }

    /// Utilization fractions against a device budget, in Table I's
    /// column order `(LUT, FF, BRAM, URAM, DSP)`.
    pub fn utilization(&self, budget: &ResourceUsage) -> (f64, f64, f64, f64, f64) {
        let t = self.total();
        (
            t.lut / budget.lut,
            t.ff / budget.ff,
            t.bram / budget.bram,
            t.uram / budget.uram,
            t.dsp / budget.dsp,
        )
    }

    /// `true` if the design fits the budget in every resource class.
    pub fn fits(&self, budget: &ResourceUsage) -> bool {
        let (lut, ff, bram, uram, dsp) = self.utilization(budget);
        lut <= 1.0 && ff <= 1.0 && bram <= 1.0 && uram <= 1.0 && dsp <= 1.0
    }

    /// The PE-array footprint at a MAC datapath width of `bits`,
    /// calibrated so 16 bits reproduces Table I's "PEs" row exactly.
    ///
    /// LUT and FF scale linearly with the datapath width (adders,
    /// accumulators, and pipeline registers are width-proportional);
    /// DSP count scales with the number of 16-bit multiplier slots a
    /// `bits`-wide product occupies (`ceil(bits / 16)` — a narrower MAC
    /// still holds its slot, a 32-bit MAC cascades two).
    pub fn pe_array_cost(&self, bits: u32) -> ResourceUsage {
        let pe_scale = self.cfg.pe_count_total() as f64 / PE_COUNT_REF;
        let width = f64::from(bits.max(1)) / f64::from(MAC_WIDTH_REF);
        let slots = f64::from(bits.max(1).div_ceil(MAC_WIDTH_REF));
        ResourceUsage {
            lut: 216_300.0 * pe_scale * width,
            ff: 161_800.0 * pe_scale * width,
            bram: 0.0,
            uram: 0.0,
            dsp: 2_295.0 * pe_scale * slots,
        }
    }

    /// Prices a per-layer precision plan: PE array at the plan's MAC
    /// width (the widest layer sets the time-shared datapath), weight
    /// memory at each layer's own storage width, gradient memory at the
    /// full 32-bit training width.
    ///
    /// An empty plan prices the all-32-bit single-layer degenerate case
    /// (MAC width 32, no weight storage).
    pub fn price_layer_formats(&self, layers: &[LayerFormat]) -> PrecisionPlanCost {
        let mac_width_bits = layers
            .iter()
            .map(LayerFormat::storage_bits)
            .max()
            .unwrap_or(FULL_PRECISION_BITS);
        let mut weight_mem_bytes = 0u64;
        let mut gradient_mem_bytes = 0u64;
        for layer in layers {
            let params = layer.param_count() as u64;
            weight_mem_bytes += (params * u64::from(layer.storage_bits())).div_ceil(8);
            gradient_mem_bytes += params * u64::from(FULL_PRECISION_BITS) / 8;
        }
        let mem_scale = (weight_mem_bytes + gradient_mem_bytes) as f64 / MEM_BYTES_REF;
        let memory = ResourceUsage {
            lut: 10_300.0 * mem_scale,
            ff: 0.0,
            bram: 584.0 * mem_scale,
            uram: 128.0 * mem_scale,
            dsp: 0.0,
        };
        PrecisionPlanCost {
            mac_width_bits,
            weight_mem_bytes,
            gradient_mem_bytes,
            pe: self.pe_array_cost(mac_width_bits),
            memory,
        }
    }
}

/// The reference MAC datapath width (bits) of the Table I design point.
const MAC_WIDTH_REF: u32 = 16;

/// Storage and gradient width (bits) of full-precision layers.
const FULL_PRECISION_BITS: u32 = 32;

/// One layer of a per-layer precision plan: its dense dimensions and the
/// frozen activation/weight format it runs at (`None` = full 32-bit).
///
/// This is the bridge from a frozen `fixar-nn` precision policy to the
/// resource model: a `PolicySnapshot`'s per-point formats plus the MLP's
/// layer dimensions describe exactly one plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerFormat {
    /// Fan-in of the dense layer.
    pub inputs: usize,
    /// Fan-out of the dense layer.
    pub outputs: usize,
    /// Frozen fixed-point format, or `None` for full precision.
    pub format: Option<QFormat>,
}

impl LayerFormat {
    /// A layer priced at an explicit format.
    pub fn quantized(inputs: usize, outputs: usize, format: QFormat) -> Self {
        Self {
            inputs,
            outputs,
            format: Some(format),
        }
    }

    /// A full-precision (32-bit) layer.
    pub fn full_precision(inputs: usize, outputs: usize) -> Self {
        Self {
            inputs,
            outputs,
            format: None,
        }
    }

    /// Weights + biases stored for this layer.
    pub fn param_count(&self) -> usize {
        self.inputs * self.outputs + self.outputs
    }

    /// Storage width in bits (the format's total width, or 32).
    pub fn storage_bits(&self) -> u32 {
        self.format
            .map_or(FULL_PRECISION_BITS, |f| f.total_bits().max(1))
    }
}

/// Priced outcome of a per-layer precision plan — what a configuration
/// on the accuracy-vs-bits frontier costs in silicon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionPlanCost {
    /// MAC datapath width: the widest layer's storage width (the PE
    /// array is time-shared across layers, so it must carry the widest).
    pub mac_width_bits: u32,
    /// On-chip weight storage at the per-layer widths.
    pub weight_mem_bytes: u64,
    /// On-chip gradient storage (always full 32-bit training width).
    pub gradient_mem_bytes: u64,
    /// PE-array footprint at [`PrecisionPlanCost::mac_width_bits`].
    pub pe: ResourceUsage,
    /// On-chip memory footprint at the plan's storage widths.
    pub memory: ResourceUsage,
}

impl PrecisionPlanCost {
    /// Summed PE + memory footprint (the precision-dependent part of the
    /// design; host-interface IP is fixed and priced by
    /// [`ResourceModel::total`]).
    pub fn total(&self) -> ResourceUsage {
        let mut t = self.pe;
        t.add(self.memory);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_design_point_reproduces_table1_totals() {
        let model = ResourceModel::new(AccelConfig::default());
        let t = model.total();
        // Table I totals: 508.1K LUT, 408.9K FF, 774 BRAM, 128 URAM,
        // 2302 DSP (±0.5% for the capacity-vs-usage rounding).
        assert!(
            (t.lut - 508_100.0).abs() / 508_100.0 < 0.005,
            "lut={}",
            t.lut
        );
        assert!((t.ff - 408_900.0).abs() / 408_900.0 < 0.005, "ff={}", t.ff);
        assert!((t.bram - 774.0).abs() / 774.0 < 0.005, "bram={}", t.bram);
        assert!((t.uram - 128.0).abs() / 128.0 < 0.005, "uram={}", t.uram);
        assert!((t.dsp - 2_302.0).abs() / 2_302.0 < 0.005, "dsp={}", t.dsp);
    }

    #[test]
    fn default_utilization_matches_paper_percentages() {
        let model = ResourceModel::new(AccelConfig::default());
        let (lut, _, bram, uram, dsp) = model.utilization(&U50_BUDGET);
        assert!((lut - 0.584).abs() < 0.01, "lut util {lut}");
        assert!((bram - 0.576).abs() < 0.01, "bram util {bram}");
        assert!((uram - 0.20).abs() < 0.01, "uram util {uram}");
        assert!((dsp - 0.388).abs() < 0.01, "dsp util {dsp}");
        assert!(model.fits(&U50_BUDGET));
    }

    #[test]
    fn pe_resources_scale_with_core_count() {
        let cfg = AccelConfig {
            n_cores: 4,
            ..AccelConfig::default()
        };
        let four = ResourceModel::new(cfg);
        let two = ResourceModel::new(AccelConfig::default());
        let pe4 = four.components()[0].1;
        let pe2 = two.components()[0].1;
        assert!((pe4.dsp / pe2.dsp - 2.0).abs() < 1e-9);
        let (lut4, ..) = four.utilization(&U50_BUDGET);
        let (lut2, ..) = two.utilization(&U50_BUDGET);
        assert!(lut4 > lut2, "more cores must cost more LUTs");
        // Eight cores are far beyond the U50's LUT budget (the paper
        // stops at N = 2 for SLR-crossing reasons well before that).
        let cfg8 = AccelConfig {
            n_cores: 8,
            ..AccelConfig::default()
        };
        assert!(
            !ResourceModel::new(cfg8).fits(&U50_BUDGET),
            "8 cores should not fit the U50"
        );
    }

    #[test]
    fn host_interface_blocks_are_fixed() {
        let cfg = AccelConfig {
            n_cores: 4,
            adam_lanes: 32,
            ..AccelConfig::default()
        };
        let scaled = ResourceModel::new(cfg);
        let base = ResourceModel::new(AccelConfig::default());
        for name in ["Kernel Interface", "HBM Interface", "PCIe DMA"] {
            let s = scaled
                .components()
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1;
            let b = base
                .components()
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1;
            assert_eq!(s.lut, b.lut, "{name} must not scale");
        }
    }

    #[test]
    fn sixteen_bit_uniform_plan_reproduces_table1_pe_row() {
        // The paper's actor at the default design point, uniformly
        // Q2.14: the MAC width is 16, so the PE row must tie back to
        // Table I exactly.
        let model = ResourceModel::new(AccelConfig::default());
        let fmt = QFormat::new(16, 14).unwrap();
        let plan = [
            LayerFormat::quantized(17, 400, fmt),
            LayerFormat::quantized(400, 300, fmt),
            LayerFormat::quantized(300, 6, fmt),
        ];
        let cost = model.price_layer_formats(&plan);
        assert_eq!(cost.mac_width_bits, 16);
        assert_eq!(cost.pe, model.components()[0].1);
    }

    #[test]
    fn narrower_formats_cost_less_wider_cost_more() {
        let model = ResourceModel::new(AccelConfig::default());
        let dims = [(17usize, 400usize), (400, 300), (300, 6)];
        let plan_at = |bits: u32| -> PrecisionPlanCost {
            let fmt = QFormat::new(bits, bits / 2).unwrap();
            let layers: Vec<LayerFormat> = dims
                .iter()
                .map(|&(i, o)| LayerFormat::quantized(i, o, fmt))
                .collect();
            model.price_layer_formats(&layers)
        };
        let p8 = plan_at(8);
        let p16 = plan_at(16);
        let p32 = plan_at(32);
        assert!(p8.pe.lut < p16.pe.lut && p16.pe.lut < p32.pe.lut);
        assert!(p8.weight_mem_bytes < p16.weight_mem_bytes);
        assert!(p16.weight_mem_bytes < p32.weight_mem_bytes);
        // Gradients always train at 32 bits, so they don't shrink.
        assert_eq!(p8.gradient_mem_bytes, p16.gradient_mem_bytes);
        // A 32-bit product cascades two 16-bit multiplier slots.
        assert_eq!(p32.pe.dsp, 2.0 * p16.pe.dsp);
        assert_eq!(p8.pe.dsp, p16.pe.dsp);
    }

    #[test]
    fn mixed_precision_plan_prices_between_the_uniform_arms() {
        let model = ResourceModel::new(AccelConfig::default());
        let q8 = QFormat::new(8, 6).unwrap();
        let q16 = QFormat::new(16, 14).unwrap();
        let uniform8: Vec<LayerFormat> = [(17, 400), (400, 300), (300, 6)]
            .iter()
            .map(|&(i, o)| LayerFormat::quantized(i, o, q8))
            .collect();
        let uniform16: Vec<LayerFormat> = uniform8
            .iter()
            .map(|l| LayerFormat::quantized(l.inputs, l.outputs, q16))
            .collect();
        let mixed = [
            LayerFormat::quantized(17, 400, q8),
            LayerFormat::quantized(400, 300, q16),
            LayerFormat::quantized(300, 6, q8),
        ];
        let c8 = model.price_layer_formats(&uniform8);
        let c16 = model.price_layer_formats(&uniform16);
        let cm = model.price_layer_formats(&mixed);
        // The widest layer pins the shared datapath...
        assert_eq!(cm.mac_width_bits, 16);
        assert_eq!(cm.pe, c16.pe);
        // ...but per-layer storage still saves memory.
        assert!(c8.weight_mem_bytes < cm.weight_mem_bytes);
        assert!(cm.weight_mem_bytes < c16.weight_mem_bytes);
        assert!(cm.memory.bram < c16.memory.bram);
        assert!(cm.total().lut <= c16.total().lut);
    }

    #[test]
    fn full_precision_layers_price_at_32_bits() {
        let model = ResourceModel::new(AccelConfig::default());
        let plan = [LayerFormat::full_precision(10, 4)];
        let cost = model.price_layer_formats(&plan);
        assert_eq!(cost.mac_width_bits, 32);
        assert_eq!(cost.weight_mem_bytes, (10 * 4 + 4) * 4);
        assert_eq!(cost.weight_mem_bytes, cost.gradient_mem_bytes);
    }

    #[test]
    fn component_rows_match_table1() {
        let model = ResourceModel::new(AccelConfig::default());
        let rows = model.components();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].0, "PEs");
        assert_eq!(rows[0].1.dsp, 2_295.0);
        assert_eq!(rows[2].1.dsp, 3.0); // Adam
        assert_eq!(rows[6].1.bram, 176.0); // PCIe DMA
    }
}
