//! On-chip memory models: weight, gradient, and activation memories.
//!
//! FIXAR stores *all* model parameters, gradients, and activations in
//! on-chip BRAM/URAM — "it does not require any external DRAM memory
//! accesses". The weight memory is 512 bits wide (16 × 32-bit words per
//! row access) and stores matrices row by row; rows are padded to the
//! word boundary, which is why the paper's 259 507-parameter DDPG model
//! occupies ≈ 1.05 MB.

use bytes::Bytes;
use fixar_fixed::Fx32;
use fixar_nn::{Activation, Mlp};

use crate::error::AccelError;

/// Words (32-bit) per memory row — the 512-bit interface width.
pub const WORDS_PER_ROW: usize = 16;

/// Placement of one layer inside the weight memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerImage {
    /// Output dimension (matrix rows).
    pub rows: usize,
    /// Input dimension (matrix columns).
    pub cols: usize,
    /// Word offset of the weight matrix (row-major, row-padded).
    pub weight_offset: usize,
    /// Word offset of the bias vector.
    pub bias_offset: usize,
}

impl LayerImage {
    /// Padded words per matrix row (512-bit aligned).
    pub fn padded_cols(&self) -> usize {
        self.cols.div_ceil(WORDS_PER_ROW) * WORDS_PER_ROW
    }
}

/// Placement of a whole network inside the weight memory, plus the
/// topology needed to execute it.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkImage {
    /// Per-layer placement.
    pub layers: Vec<LayerImage>,
    /// Layer widths, input first.
    pub sizes: Vec<usize>,
    /// Hidden activation of the network.
    pub hidden_activation: Activation,
    /// Output activation of the network.
    pub output_activation: Activation,
}

impl NetworkImage {
    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// The 512-bit-wide on-chip weight memory.
///
/// # Example
///
/// ```
/// use fixar_accel::WeightMemory;
/// use fixar_nn::{Mlp, MlpConfig};
///
/// let mlp = Mlp::<fixar_fixed::Fx32>::new_random(&MlpConfig::new(vec![4, 8, 2]), 0)?;
/// let mut mem = WeightMemory::new(64 * 1024);
/// let image = mem.load_mlp(&mlp)?;
/// assert_eq!(image.num_layers(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct WeightMemory {
    data: Vec<i32>,
    capacity_bytes: usize,
}

impl WeightMemory {
    /// Creates an empty memory with the given byte capacity.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            data: Vec::new(),
            capacity_bytes,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Loads a network's weights and biases, row-padded to the 512-bit
    /// interface, and returns its placement map.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::MemoryOverflow`] if the padded image exceeds
    /// capacity — FIXAR refuses models that would spill off-chip.
    pub fn load_mlp(&mut self, mlp: &Mlp<Fx32>) -> Result<NetworkImage, AccelError> {
        let mut required = 0usize;
        for l in 0..mlp.num_layers() {
            let w = mlp.weight(l);
            let padded = w.cols().div_ceil(WORDS_PER_ROW) * WORDS_PER_ROW;
            required += w.rows() * padded;
            required += mlp.bias(l).len().div_ceil(WORDS_PER_ROW) * WORDS_PER_ROW;
        }
        if self.used_bytes() + required * 4 > self.capacity_bytes {
            return Err(AccelError::MemoryOverflow {
                memory: "weight memory",
                required: self.used_bytes() + required * 4,
                capacity: self.capacity_bytes,
            });
        }

        let mut layers = Vec::with_capacity(mlp.num_layers());
        for l in 0..mlp.num_layers() {
            let w = mlp.weight(l);
            let padded = w.cols().div_ceil(WORDS_PER_ROW) * WORDS_PER_ROW;
            let weight_offset = self.data.len();
            for r in 0..w.rows() {
                for c in 0..padded {
                    let raw = if c < w.cols() { w[(r, c)].raw() } else { 0 };
                    self.data.push(raw);
                }
            }
            let bias_offset = self.data.len();
            let b = mlp.bias(l);
            let bias_padded = b.len().div_ceil(WORDS_PER_ROW) * WORDS_PER_ROW;
            for c in 0..bias_padded {
                self.data.push(if c < b.len() { b[c].raw() } else { 0 });
            }
            layers.push(LayerImage {
                rows: w.rows(),
                cols: w.cols(),
                weight_offset,
                bias_offset,
            });
        }
        Ok(NetworkImage {
            layers,
            sizes: mlp.layer_sizes().to_vec(),
            hidden_activation: mlp.hidden_activation(),
            output_activation: mlp.output_activation(),
        })
    }

    /// Reads one weight as `Fx32`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the layer image.
    pub fn weight(&self, layer: &LayerImage, row: usize, col: usize) -> Fx32 {
        assert!(
            row < layer.rows && col < layer.cols,
            "weight read out of bounds"
        );
        Fx32::from_raw(self.data[layer.weight_offset + row * layer.padded_cols() + col])
    }

    /// Writes one weight (the Adam unit's write-back path).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the layer image.
    pub fn set_weight(&mut self, layer: &LayerImage, row: usize, col: usize, value: Fx32) {
        assert!(
            row < layer.rows && col < layer.cols,
            "weight write out of bounds"
        );
        self.data[layer.weight_offset + row * layer.padded_cols() + col] = value.raw();
    }

    /// Reads one bias element.
    ///
    /// # Panics
    ///
    /// Panics if `i` falls outside the layer's bias vector.
    pub fn bias(&self, layer: &LayerImage, i: usize) -> Fx32 {
        assert!(i < layer.rows, "bias read out of bounds");
        Fx32::from_raw(self.data[layer.bias_offset + i])
    }

    /// Writes one bias element (the Adam unit's write-back path).
    ///
    /// # Panics
    ///
    /// Panics if `i` falls outside the layer's bias vector.
    pub fn set_bias(&mut self, layer: &LayerImage, i: usize, value: Fx32) {
        assert!(i < layer.rows, "bias write out of bounds");
        self.data[layer.bias_offset + i] = value.raw();
    }

    /// Materializes a layer's weight matrix (diagnostics / equivalence
    /// tests; the hardware streams rows instead).
    pub fn layer_matrix(&self, layer: &LayerImage) -> fixar_tensor::Matrix<Fx32> {
        fixar_tensor::Matrix::from_fn(layer.rows, layer.cols, |r, c| self.weight(layer, r, c))
    }

    /// Snapshot of the raw memory image (bitstream export).
    pub fn as_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.data.len() * 4);
        for w in &self.data {
            out.extend_from_slice(&w.to_le_bytes());
        }
        Bytes::from(out)
    }

    /// Clears the memory (model reload).
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

/// The gradient memory: same geometry and capacity as the weight memory
/// (paper: "the size of the gradient memory is same as the weight
/// memory's"). Holds accumulated gradients awaiting the Adam unit.
#[derive(Debug, Clone)]
pub struct GradientMemory {
    inner: WeightMemory,
}

impl GradientMemory {
    /// Creates an empty gradient memory of the given capacity.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            inner: WeightMemory::new(capacity_bytes),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.inner.capacity_bytes()
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> usize {
        self.inner.used_bytes()
    }

    /// Allocates a zeroed gradient image mirroring a network placement.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::MemoryOverflow`] when the mirror image does
    /// not fit.
    pub fn allocate_like(&mut self, image: &NetworkImage) -> Result<(), AccelError> {
        let mut required = 0usize;
        for l in &image.layers {
            required += l.rows * l.padded_cols();
            required += l.rows.div_ceil(WORDS_PER_ROW) * WORDS_PER_ROW;
        }
        if self.used_bytes() + required * 4 > self.capacity_bytes() {
            return Err(AccelError::MemoryOverflow {
                memory: "gradient memory",
                required: self.used_bytes() + required * 4,
                capacity: self.capacity_bytes(),
            });
        }
        self.inner.data.resize(self.inner.data.len() + required, 0);
        Ok(())
    }

    /// Clears all accumulated gradients.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

/// The small activation memory holding one sample's layer activations
/// (paper: 2.94 KB "to hold the activation data out of all 3 layers").
#[derive(Debug, Clone)]
pub struct ActivationMemory {
    capacity_bytes: usize,
}

impl ActivationMemory {
    /// Creates an activation memory of the given capacity.
    pub fn new(capacity_bytes: usize) -> Self {
        Self { capacity_bytes }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes one sample of the given network needs (all layer widths,
    /// input included, at 32 bits).
    pub fn required_bytes(sizes: &[usize]) -> usize {
        sizes.iter().sum::<usize>() * 4
    }

    /// Validates that a network's activations fit.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::MemoryOverflow`] when they do not.
    pub fn check_fit(&self, sizes: &[usize]) -> Result<(), AccelError> {
        let required = Self::required_bytes(sizes);
        if required > self.capacity_bytes {
            return Err(AccelError::MemoryOverflow {
                memory: "activation memory",
                required,
                capacity: self.capacity_bytes,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_nn::MlpConfig;

    fn mlp(sizes: Vec<usize>) -> Mlp<Fx32> {
        Mlp::new_random(&MlpConfig::new(sizes), 7).unwrap()
    }

    #[test]
    fn paper_model_occupies_about_1mb() {
        // Actor 17-400-300-6 + critic 23-400-300-1, row-padded to 512 bits.
        let mut mem = WeightMemory::new(1_150_000);
        mem.load_mlp(&mlp(vec![17, 400, 300, 6])).unwrap();
        mem.load_mlp(&mlp(vec![23, 400, 300, 1])).unwrap();
        let mb = mem.used_bytes() as f64 / 1e6;
        assert!(
            (1.0..=1.15).contains(&mb),
            "padded DDPG image should be ≈1.05 MB, got {mb} MB"
        );
    }

    #[test]
    fn overflow_is_refused() {
        let mut mem = WeightMemory::new(1_000);
        let err = mem.load_mlp(&mlp(vec![17, 400, 300, 6])).unwrap_err();
        assert!(matches!(err, AccelError::MemoryOverflow { .. }));
        // Nothing was committed.
        assert_eq!(mem.used_bytes(), 0);
    }

    #[test]
    fn roundtrip_weight_read_write() {
        let net = mlp(vec![4, 8, 2]);
        let mut mem = WeightMemory::new(64 * 1024);
        let image = mem.load_mlp(&net).unwrap();
        // Every weight reads back exactly.
        for (l, layer) in image.layers.iter().enumerate() {
            for r in 0..layer.rows {
                for c in 0..layer.cols {
                    assert_eq!(mem.weight(layer, r, c), net.weight(l)[(r, c)]);
                }
            }
            for i in 0..layer.rows {
                assert_eq!(mem.bias(layer, i), net.bias(l)[i]);
            }
        }
        // Write-back works.
        let new_val = Fx32::from_f64(0.625);
        mem.set_weight(&image.layers[0], 1, 2, new_val);
        assert_eq!(mem.weight(&image.layers[0], 1, 2), new_val);
    }

    #[test]
    fn layer_matrix_reconstruction_is_exact() {
        let net = mlp(vec![5, 7, 3]);
        let mut mem = WeightMemory::new(64 * 1024);
        let image = mem.load_mlp(&net).unwrap();
        for (l, layer) in image.layers.iter().enumerate() {
            assert_eq!(&mem.layer_matrix(layer), net.weight(l));
        }
    }

    #[test]
    fn bytes_snapshot_has_padded_length() {
        let net = mlp(vec![4, 8, 2]);
        let mut mem = WeightMemory::new(64 * 1024);
        mem.load_mlp(&net).unwrap();
        let bytes = mem.as_bytes();
        assert_eq!(bytes.len(), mem.used_bytes());
        // 512-bit alignment: every row is a multiple of 64 bytes.
        assert_eq!(bytes.len() % 64, 0);
    }

    #[test]
    fn gradient_memory_mirrors_weight_layout() {
        let net = mlp(vec![17, 400, 300, 6]);
        let mut wmem = WeightMemory::new(1_150_000);
        let image = wmem.load_mlp(&net).unwrap();
        let mut gmem = GradientMemory::new(1_150_000);
        gmem.allocate_like(&image).unwrap();
        assert!(gmem.used_bytes() >= net.param_count() * 4);
        assert!(gmem.used_bytes() <= gmem.capacity_bytes());
        gmem.clear();
        assert_eq!(gmem.used_bytes(), 0);
    }

    #[test]
    fn activation_memory_sizing_matches_paper() {
        // Critic 23-400-300-1: 724 words ≈ 2.9 KB fits the 2.94 KB memory.
        let act = ActivationMemory::new(3_010);
        act.check_fit(&[23, 400, 300, 1]).unwrap();
        act.check_fit(&[17, 400, 300, 6]).unwrap();
        // A 4× wider network does not fit.
        assert!(act.check_fit(&[23, 1600, 300, 1]).is_err());
        assert_eq!(ActivationMemory::required_bytes(&[23, 400, 300, 1]), 2896);
    }

    #[test]
    fn out_of_bounds_reads_panic() {
        let net = mlp(vec![4, 8, 2]);
        let mut mem = WeightMemory::new(64 * 1024);
        let image = mem.load_mlp(&net).unwrap();
        let layer = image.layers[0];
        assert!(std::panic::catch_unwind(|| mem.weight(&layer, 100, 0)).is_err());
    }
}
