//! The configurable-datapath processing element (paper §V-C, Fig. 5).

use fixar_fixed::{Fx32, Q16};

/// Precision mode of a PE's datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeMode {
    /// One 32-bit activation per cycle: the two 32×16 multipliers compute
    /// the high and low halves of a 32×32 product, and the upper partial
    /// product is left-shifted and added to the lower one.
    #[default]
    Full,
    /// Two independent 16-bit activations per cycle: each multiplier
    /// produces its own MAC result — the post-quantization 2× throughput
    /// mode.
    Half,
}

/// One multiply-and-accumulate processing element with the configurable
/// datapath of Fig. 5: two 32(weight)×16(activation) multipliers whose
/// partial products either combine into a full 32×32 product or serve two
/// half-precision lanes.
///
/// The element is stateless apart from its mode; accumulation happens in
/// the array column (see [`crate::AapCore`]). All arithmetic is integer;
/// results are raw fixed-point products in double-width (`i64`)
/// precision, exactly what a DSP cascade hands to the accumulator.
///
/// # Example
///
/// ```
/// use fixar_accel::{ConfigurablePe, PeMode};
///
/// let pe = ConfigurablePe::new(PeMode::Full);
/// // 3 × 5 = 15 regardless of the two-multiplier decomposition.
/// assert_eq!(pe.mac_full(3, 5), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfigurablePe {
    mode: PeMode,
}

impl ConfigurablePe {
    /// Creates a PE in the given mode.
    pub fn new(mode: PeMode) -> Self {
        Self { mode }
    }

    /// Current datapath mode.
    pub fn mode(self) -> PeMode {
        self.mode
    }

    /// Reconfigures the datapath (a mode register write, zero cycles in
    /// the schedule model).
    pub fn set_mode(&mut self, mode: PeMode) {
        self.mode = mode;
    }

    /// Full-precision product `weight × activation` computed exactly as
    /// the hardware does: split the 32-bit activation into a signed high
    /// half and an unsigned low half, run both 32×16 multipliers, shift
    /// the upper partial product left by 16, and add.
    ///
    /// The result equals the exact 64-bit product for every input pair —
    /// the decomposition is lossless (property-tested over the full
    /// operand space).
    #[inline]
    pub fn mac_full(self, weight: i32, activation: i32) -> i64 {
        // Signed high half: arithmetic shift keeps the sign.
        let act_hi = (activation >> 16) as i64;
        // Unsigned low half: plain bits.
        let act_lo = (activation & 0xFFFF) as i64;
        let p_hi = weight as i64 * act_hi; // 32×16 multiplier A
        let p_lo = weight as i64 * act_lo; // 32×16 multiplier B
        (p_hi << 16) + p_lo
    }

    /// Half-precision mode: two *independent* products from the two
    /// multipliers, one per 16-bit activation lane.
    #[inline]
    pub fn mac_half(self, weight: i32, act_lane0: i16, act_lane1: i16) -> (i64, i64) {
        (
            weight as i64 * act_lane0 as i64,
            weight as i64 * act_lane1 as i64,
        )
    }

    /// Number of MAC results this PE produces per cycle in its mode.
    #[inline]
    pub fn macs_per_cycle(self) -> u64 {
        match self.mode {
            PeMode::Full => 1,
            PeMode::Half => 2,
        }
    }
}

/// Rounds a raw double-width product down to the `Fx32` grid with the
/// same round-to-nearest the [`fixar_fixed::Q32`] multiplier uses — the
/// PE output register.
#[inline]
pub(crate) fn round_product_to_fx32(product: i64) -> Fx32 {
    const F: u32 = 20;
    let rounded = (product + (1i64 << (F - 1))) >> F;
    Fx32::from_raw(rounded.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
}

/// Half-precision lane product scaling: a `Q16<10>` activation times a
/// `Q32<20>` weight yields a raw product with 30 fractional bits; rescale
/// to the 20-bit grid.
#[inline]
pub(crate) fn round_half_product_to_fx32(product: i64) -> Fx32 {
    const SHIFT: u32 = 10; // 30 − 20
    let rounded = (product + (1i64 << (SHIFT - 1))) >> SHIFT;
    Fx32::from_raw(rounded.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
}

/// Convenience: the `Q16` format used on half-precision activation lanes.
pub(crate) type HalfAct = Q16<10>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_decomposition_is_exact() {
        let pe = ConfigurablePe::new(PeMode::Full);
        let cases = [
            (0i32, 0i32),
            (1, 1),
            (-1, 1),
            (1, -1),
            (-1, -1),
            (i32::MAX, i32::MAX),
            (i32::MIN, i32::MAX),
            (i32::MAX, i32::MIN),
            (i32::MIN, i32::MIN),
            (123_456_789, -987_654_321),
            (-40_000, 70_000),
        ];
        for (w, a) in cases {
            assert_eq!(pe.mac_full(w, a), w as i64 * a as i64, "w={w} a={a}");
        }
    }

    #[test]
    fn pe_decomposition_exact_on_pseudorandom_grid() {
        let pe = ConfigurablePe::new(PeMode::Full);
        let mut x: i64 = 0x243F_6A88_85A3_08D3u64 as i64;
        for _ in 0..10_000 {
            // xorshift for cheap pseudorandom coverage
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let w = (x >> 32) as i32;
            let a = x as i32;
            assert_eq!(pe.mac_full(w, a), w as i64 * a as i64);
        }
    }

    #[test]
    fn half_mode_lanes_are_independent() {
        let pe = ConfigurablePe::new(PeMode::Half);
        let (p0, p1) = pe.mac_half(1000, 7, -9);
        assert_eq!(p0, 7000);
        assert_eq!(p1, -9000);
        // Changing one lane never affects the other.
        let (q0, _) = pe.mac_half(1000, 7, 12345);
        assert_eq!(q0, p0);
    }

    #[test]
    fn throughput_doubles_in_half_mode() {
        assert_eq!(ConfigurablePe::new(PeMode::Full).macs_per_cycle(), 1);
        assert_eq!(ConfigurablePe::new(PeMode::Half).macs_per_cycle(), 2);
    }

    #[test]
    fn product_rounding_matches_q32_multiplier() {
        // The PE product path must agree with the software Q32 multiply
        // bit for bit — that is the bridge between the accelerator model
        // and the fixar-nn reference.
        let pe = ConfigurablePe::new(PeMode::Full);
        let samples = [
            (0.5, 0.25),
            (-1.75, 3.5),
            (100.0, -0.001),
            (1999.0, 1.0),
            (0.0009765625, 0.0009765625),
        ];
        for (a, b) in samples {
            let qa = Fx32::from_f64(a);
            let qb = Fx32::from_f64(b);
            let hw = round_product_to_fx32(pe.mac_full(qa.raw(), qb.raw()));
            let sw = qa * qb;
            assert_eq!(hw, sw, "a={a} b={b}");
        }
    }

    #[test]
    fn half_product_scaling_is_consistent() {
        // A Q6.10 activation times a Q12.20 weight, rescaled to Q12.20,
        // must approximate the real product within one output ulp plus
        // the activation's own quantization error.
        let pe = ConfigurablePe::new(PeMode::Half);
        for (w, a) in [(1.5f64, 0.5f64), (-2.25, 3.125), (0.125, -7.0)] {
            let qw = Fx32::from_f64(w);
            let qa = HalfAct::from_f64(a);
            let (p0, _) = pe.mac_half(qw.raw(), qa.raw(), 0);
            let got = round_half_product_to_fx32(p0).to_f64();
            assert!((got - w * a).abs() < 1e-3, "w={w} a={a} got={got}");
        }
    }

    #[test]
    fn mode_register_roundtrip() {
        let mut pe = ConfigurablePe::default();
        assert_eq!(pe.mode(), PeMode::Full);
        pe.set_mode(PeMode::Half);
        assert_eq!(pe.mode(), PeMode::Half);
    }
}
