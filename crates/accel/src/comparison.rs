//! Table II: comparison against prior FPGA DRL accelerators.
//!
//! The prior-work rows are literature values quoted by the paper
//! (FA3C, ASPLOS'19; the PPO accelerator, FCCM'20). The paper's
//! "Normalized Peak Perf. to FIXAR" column scales each platform's peak
//! IPS by the ratio of its network size to FIXAR's — i.e. it asks "how
//! many FIXAR-sized networks per second is that?" — which
//! [`PlatformEntry::normalized_peak_ips`] reproduces.

/// Numeric precision class of a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecisionClass {
    /// 32-bit IEEE floating point.
    Float32,
    /// FIXAR's dual 32/16-bit fixed point.
    Fixed32And16,
}

impl PrecisionClass {
    /// Table II's wording.
    pub fn label(self) -> &'static str {
        match self {
            PrecisionClass::Float32 => "Floating 32-bit",
            PrecisionClass::Fixed32And16 => "Fixed 32, 16-bit",
        }
    }
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformEntry {
    /// Venue/name of the work.
    pub name: &'static str,
    /// FPGA platform.
    pub platform: &'static str,
    /// Clock frequency (MHz).
    pub clock_mhz: f64,
    /// Actor-critic algorithm accelerated.
    pub algorithm: &'static str,
    /// Action-space class of the evaluated tasks.
    pub task_env: &'static str,
    /// Numeric precision.
    pub precision: PrecisionClass,
    /// DSP slices used.
    pub dsp: u32,
    /// Policy-network size in KB.
    pub network_kb: f64,
    /// Peak throughput in inferences per second.
    pub peak_ips: f64,
    /// Accelerator energy efficiency in IPS/W, when reported.
    pub ips_per_watt: Option<f64>,
}

impl PlatformEntry {
    /// Peak IPS normalized to FIXAR's network size (Table II's
    /// "Normalized Peak Perf. to FIXAR" column): platforms running
    /// bigger networks get credited proportionally.
    pub fn normalized_peak_ips(&self, fixar_network_kb: f64) -> f64 {
        self.peak_ips * self.network_kb / fixar_network_kb
    }
}

/// FA3C (ASPLOS'19): A3C on a Xilinx VCU1525, discrete actions, fp32.
pub fn fa3c() -> PlatformEntry {
    PlatformEntry {
        name: "FA3C (ASPLOS'19)",
        platform: "Xilinx VCU1525",
        clock_mhz: 180.0,
        algorithm: "Actor-Critic (A3C)",
        task_env: "Discrete",
        precision: PrecisionClass::Float32,
        dsp: 2348,
        network_kb: 2592.0,
        peak_ips: 2550.0,
        ips_per_watt: Some(141.7),
    }
}

/// The PPO accelerator (FCCM'20): continuous actions, fp32, Xilinx U200.
pub fn fccm20_ppo() -> PlatformEntry {
    PlatformEntry {
        name: "PPO (FCCM'20)",
        platform: "Xilinx U200",
        clock_mhz: 285.0,
        algorithm: "Actor-Critic (PPO)",
        task_env: "Continuous",
        precision: PrecisionClass::Float32,
        dsp: 3744,
        network_kb: 229.6,
        peak_ips: 15_286.8,
        ips_per_watt: None,
    }
}

/// FIXAR's own row, parameterized by the modelled peak throughput and
/// energy efficiency (defaults: the paper's reported numbers).
pub fn fixar(peak_ips: f64, ips_per_watt: f64) -> PlatformEntry {
    PlatformEntry {
        name: "FIXAR",
        platform: "Xilinx U50",
        clock_mhz: 164.0,
        algorithm: "Actor-Critic (DDPG)",
        task_env: "Continuous",
        precision: PrecisionClass::Fixed32And16,
        dsp: 2302,
        network_kb: 514.4,
        peak_ips,
        ips_per_watt: Some(ips_per_watt),
    }
}

/// All three rows in Table II's column order.
pub fn table2(fixar_peak_ips: f64, fixar_ips_per_watt: f64) -> Vec<PlatformEntry> {
    vec![
        fa3c(),
        fccm20_ppo(),
        fixar(fixar_peak_ips, fixar_ips_per_watt),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reproduces_table2_numbers() {
        let fixar_kb = 514.4;
        // FA3C: 2550 × 2592/514.4 = 12 849.1.
        let n = fa3c().normalized_peak_ips(fixar_kb);
        assert!((n - 12_849.1).abs() < 5.0, "FA3C normalized {n}");
        // FCCM'20: 15 286.8 × 229.6/514.4 = 6 823.2.
        let n = fccm20_ppo().normalized_peak_ips(fixar_kb);
        assert!((n - 6_823.2).abs() < 5.0, "FCCM normalized {n}");
        // FIXAR normalizes to itself.
        let f = fixar(38_779.8, 2_638.0);
        assert!((f.normalized_peak_ips(fixar_kb) - 38_779.8).abs() < 1e-6);
    }

    #[test]
    fn fixar_wins_normalized_peak_and_efficiency() {
        let rows = table2(38_779.8, 2_638.0);
        let fixar_row = &rows[2];
        for other in &rows[..2] {
            assert!(
                fixar_row.normalized_peak_ips(514.4) > other.normalized_peak_ips(514.4),
                "{} should not beat FIXAR",
                other.name
            );
            if let Some(eff) = other.ips_per_watt {
                assert!(fixar_row.ips_per_watt.unwrap() > eff);
            }
        }
    }

    #[test]
    fn fixar_uses_fewest_dsps_among_the_three() {
        let rows = table2(38_779.8, 2_638.0);
        assert!(rows[2].dsp < rows[0].dsp);
        assert!(rows[2].dsp < rows[1].dsp);
    }

    #[test]
    fn precision_labels_match_the_table() {
        assert_eq!(PrecisionClass::Float32.label(), "Floating 32-bit");
        assert_eq!(PrecisionClass::Fixed32And16.label(), "Fixed 32, 16-bit");
    }
}
