//! Error type of the accelerator model.

use core::fmt;
use std::error::Error;

/// Error produced by the accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelError {
    /// A model does not fit in an on-chip memory (the design point the
    /// paper explicitly avoids: "without any off-chip DRAM access").
    MemoryOverflow {
        /// Which memory overflowed.
        memory: &'static str,
        /// Bytes required.
        required: usize,
        /// Bytes available.
        capacity: usize,
    },
    /// A configuration parameter is out of its legal range.
    InvalidConfig(String),
    /// An operand shape does not match the loaded network.
    Shape(String),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::MemoryOverflow {
                memory,
                required,
                capacity,
            } => write!(
                f,
                "{memory} overflow: need {required} bytes, capacity {capacity} bytes \
                 (FIXAR keeps all model state on-chip)"
            ),
            AccelError::InvalidConfig(msg) => write!(f, "invalid accelerator config: {msg}"),
            AccelError::Shape(msg) => write!(f, "operand shape mismatch: {msg}"),
        }
    }
}

impl Error for AccelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_message_mentions_both_sizes() {
        let e = AccelError::MemoryOverflow {
            memory: "weight memory",
            required: 2_000_000,
            capacity: 1_100_000,
        };
        let msg = e.to_string();
        assert!(msg.contains("2000000"));
        assert!(msg.contains("1100000"));
    }
}
