//! Power and energy-efficiency model (Fig. 10b).
//!
//! The paper measures average board power with the Xilinx Board Utility:
//! 20.4 W for the U50 card and 56.7 W for the Titan RTX, averaged over
//! the three DDPG benchmarks. This model splits the FPGA figure into a
//! static floor plus a utilization-scaled dynamic part so that design
//! sweeps (ablation benches) respond to load, while the default design
//! point reproduces the paper's numbers exactly.

/// Average-power model for the accelerator card and the GPU baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static FPGA board power (W): PCIe, HBM PHY, clocking.
    pub fpga_static_w: f64,
    /// Dynamic FPGA power at 100% PE occupancy (W).
    pub fpga_dynamic_full_w: f64,
    /// Measured GPU average power (W).
    pub gpu_avg_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // 7.0 + 14.5 × 0.924 ≈ 20.4 W at the paper's 92.4% utilization.
        Self {
            fpga_static_w: 7.0,
            fpga_dynamic_full_w: 14.5,
            gpu_avg_w: 56.7,
        }
    }
}

impl PowerModel {
    /// FPGA board power at a given PE occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn fpga_power_w(&self, utilization: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1]"
        );
        self.fpga_static_w + self.fpga_dynamic_full_w * utilization
    }

    /// Energy efficiency in IPS/W.
    pub fn ips_per_watt(ips: f64, watts: f64) -> f64 {
        ips / watts
    }

    /// FPGA energy efficiency at the given throughput and occupancy.
    pub fn fpga_ips_per_watt(&self, ips: f64, utilization: f64) -> f64 {
        Self::ips_per_watt(ips, self.fpga_power_w(utilization))
    }

    /// GPU energy efficiency at the given throughput.
    pub fn gpu_ips_per_watt(&self, ips: f64) -> f64 {
        Self::ips_per_watt(ips, self.gpu_avg_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_paper_average_power() {
        let m = PowerModel::default();
        let p = m.fpga_power_w(0.924);
        assert!((p - 20.4).abs() < 0.05, "power at 92.4% util = {p}");
    }

    #[test]
    fn paper_headline_efficiency() {
        // 53 826.8 IPS at 20.4 W → 2638.0 IPS/W.
        let eff = PowerModel::ips_per_watt(53_826.8, 20.4);
        assert!((eff - 2_638.0).abs() < 1.0, "eff={eff}");
    }

    #[test]
    fn gpu_efficiency_ratio_matches_15_4x() {
        let m = PowerModel::default();
        let fpga = m.fpga_ips_per_watt(53_826.8, 0.924);
        // GPU at 53 826.8 / 5.5 IPS (the paper's 5.5× throughput gap).
        let gpu = m.gpu_ips_per_watt(53_826.8 / 5.5);
        let ratio = fpga / gpu;
        assert!((ratio - 15.4).abs() < 0.5, "efficiency ratio {ratio}");
    }

    #[test]
    fn idle_power_is_the_static_floor() {
        let m = PowerModel::default();
        assert_eq!(m.fpga_power_w(0.0), 7.0);
        assert!(m.fpga_power_w(1.0) > m.fpga_power_w(0.5));
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn utilization_is_validated() {
        let _ = PowerModel::default().fpga_power_w(1.5);
    }
}
