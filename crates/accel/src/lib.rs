//! Cycle-level model of the FIXAR FPGA accelerator.
//!
//! The paper implements its accelerator on a Xilinx Alveo U50: `N = 2`
//! adaptive array processing (AAP) cores of 16×16 configurable processing
//! elements at 164 MHz, fed by on-chip weight/gradient/activation
//! memories, with an on-chip Adam unit and a PRNG for exploration noise.
//! This crate models that machine at two levels:
//!
//! * **Bit level** — [`ConfigurablePe`] reproduces the configurable
//!   datapath exactly: two 32×16 multipliers that either shift-combine
//!   into one full-precision 32-bit MAC or act as two independent
//!   half-precision MACs (the post-QAT 2× throughput mode).
//!   [`AapCore`] executes real matrix-vector products through that
//!   datapath in the paper's column-wise decomposition order, bit-exact
//!   against the `fixar-nn` reference kernels.
//! * **Cycle level** — [`InferenceSchedule`]/[`TrainingSchedule`] count
//!   cycles for the two dataflows (intra-layer parallelism for forward,
//!   intra-batch parallelism for training), including tile-quantization
//!   losses, pipeline overheads, and the Adam unit; [`FixarAccelerator`]
//!   aggregates them into the IPS numbers of Fig. 10.
//!
//! Companion models reproduce the paper's evaluation artifacts:
//! [`ResourceModel`] (Table I), [`PowerModel`] (Fig. 10b), [`GpuModel`]
//! (the Titan RTX baseline of Figs. 8/10), and [`comparison`] (Table II).
//!
//! # Hardware substitution
//!
//! We have no U50 card; see `DESIGN.md` §1. The datapath is bit-exact and
//! the schedules are structural (derived from the tiling the paper
//! describes), so throughput *shape* — flat accelerator IPS across batch
//! sizes, the half-precision speedup, the GPU crossover — is preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod adam_unit;
pub mod comparison;
mod core_array;
mod dataflow;
mod error;
mod gpu;
mod memory;
mod pe;
mod power;
mod prng;
mod resource;
mod serving;

pub use accelerator::{AccelConfig, FixarAccelerator, TimestepCycles};
pub use adam_unit::AdamUnit;
pub use core_array::AapCore;
pub use dataflow::{
    BatchedInferenceSchedule, DoubleBufferedServing, InferenceSchedule, Precision, TrainingSchedule,
};
pub use error::AccelError;
pub use gpu::GpuModel;
pub use memory::{ActivationMemory, GradientMemory, LayerImage, NetworkImage, WeightMemory};
pub use pe::{ConfigurablePe, PeMode};
pub use power::PowerModel;
pub use prng::{IrwinHallGaussian, Lfsr32};
pub use resource::{LayerFormat, PrecisionPlanCost, ResourceModel, ResourceUsage, U50_BUDGET};
pub use serving::MicroBatchServing;
