//! The on-chip Adam weight-update unit (paper Fig. 2, Table I's
//! "Adam Optimizer" row).
//!
//! FIXAR runs weight update entirely on the FPGA: "with accumulated
//! gradient, weight update occurs in Adam optimizer module, which is
//! fully local to FPGA as the entire model parameters are stored on-chip
//! BRAMs". This module is the functional twin: it steps the weights
//! *inside the weight-memory image*, reading one 512-bit word of
//! parameters per cycle (16 lanes), keeping its first/second moments in
//! its own on-chip state, and writing updated weights back — bit-exact
//! against the `fixar_nn::Adam` software reference, which the tests
//! enforce.

use fixar_fixed::Fx32;
use fixar_nn::AdamConfig;

use crate::error::AccelError;
use crate::memory::{NetworkImage, WeightMemory};

/// Moments and step count for one loaded network.
#[derive(Debug, Clone)]
struct MomentState {
    /// First moment per (layer, row, col) in layer-image order.
    m: Vec<Vec<Fx32>>,
    /// Second moment, same layout.
    v: Vec<Vec<Fx32>>,
    /// Bias moments per layer.
    m_b: Vec<Vec<Fx32>>,
    v_b: Vec<Vec<Fx32>>,
}

/// The weight-update engine: fixed-point Adam over the weight-memory
/// image.
///
/// # Example
///
/// ```
/// use fixar_accel::{AdamUnit, WeightMemory};
/// use fixar_nn::{AdamConfig, Mlp, MlpConfig};
/// use fixar_fixed::Fx32;
///
/// let net = Mlp::<Fx32>::new_random(&MlpConfig::new(vec![3, 8, 2]), 0)?;
/// let mut mem = WeightMemory::new(64 * 1024);
/// let image = mem.load_mlp(&net)?;
/// let mut unit = AdamUnit::new(AdamConfig::default(), &image);
/// // Zero gradients leave the image untouched:
/// let grads = fixar_nn::MlpGrads::zeros_like(&net);
/// unit.step(&mut mem, &image, &grads)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdamUnit {
    cfg: AdamConfig,
    state: MomentState,
    t: u64,
}

impl AdamUnit {
    /// Creates a unit with zeroed moments shaped for a network image.
    pub fn new(cfg: AdamConfig, image: &NetworkImage) -> Self {
        let m = image
            .layers
            .iter()
            .map(|l| vec![Fx32::ZERO; l.rows * l.cols])
            .collect::<Vec<_>>();
        let m_b = image
            .layers
            .iter()
            .map(|l| vec![Fx32::ZERO; l.rows])
            .collect::<Vec<_>>();
        Self {
            cfg,
            state: MomentState {
                v: m.clone(),
                m,
                v_b: m_b.clone(),
                m_b,
            },
            t: 0,
        }
    }

    /// Completed update steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam step to the image in `memory` from accumulated
    /// gradients, using the same per-step scalar constants and elementwise
    /// datapath as `fixar_nn::Adam` (verified bit-exact by tests).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Shape`] if the gradient buffer does not
    /// match the image layout.
    pub fn step(
        &mut self,
        memory: &mut WeightMemory,
        image: &NetworkImage,
        grads: &fixar_nn::MlpGrads<Fx32>,
    ) -> Result<(), AccelError> {
        if grads.w.len() != image.layers.len() {
            return Err(AccelError::Shape(format!(
                "gradient has {} layers, image has {}",
                grads.w.len(),
                image.layers.len()
            )));
        }
        self.t += 1;
        let t = self.t as i32;
        let bias_corr = (1.0 - self.cfg.beta2.powi(t)).sqrt() / (1.0 - self.cfg.beta1.powi(t));
        let lr_t = Fx32::from_f64(self.cfg.lr * bias_corr);
        let b1 = Fx32::from_f64(self.cfg.beta1);
        let omb1 = Fx32::from_f64(1.0 - self.cfg.beta1);
        let b2 = Fx32::from_f64(self.cfg.beta2);
        let omb2 = Fx32::from_f64(1.0 - self.cfg.beta2);
        let eps = Fx32::from_f64(self.cfg.eps);

        let lane = |p: Fx32, g: Fx32, m: &mut Fx32, v: &mut Fx32| -> Fx32 {
            *m = b1 * *m + omb1 * g;
            *v = b2 * *v + omb2 * (g * g);
            let denom = v.sqrt() + eps;
            p - lr_t * (*m / denom)
        };

        for (l, layer) in image.layers.iter().enumerate() {
            if grads.w[l].shape() != (layer.rows, layer.cols) {
                return Err(AccelError::Shape(format!(
                    "layer {l}: gradient {:?} vs image ({}, {})",
                    grads.w[l].shape(),
                    layer.rows,
                    layer.cols
                )));
            }
            for r in 0..layer.rows {
                for c in 0..layer.cols {
                    let idx = r * layer.cols + c;
                    let updated = lane(
                        memory.weight(layer, r, c),
                        grads.w[l][(r, c)],
                        &mut self.state.m[l][idx],
                        &mut self.state.v[l][idx],
                    );
                    memory.set_weight(layer, r, c, updated);
                }
            }
            for i in 0..layer.rows {
                let updated = lane(
                    memory.bias(layer, i),
                    grads.b[l][i],
                    &mut self.state.m_b[l][i],
                    &mut self.state.v_b[l][i],
                );
                memory.set_bias(layer, i, updated);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_nn::{Adam, Mlp, MlpConfig, MlpGrads};

    fn setup() -> (Mlp<Fx32>, WeightMemory, NetworkImage) {
        let net = Mlp::new_random(&MlpConfig::new(vec![4, 10, 3]), 5).unwrap();
        let mut mem = WeightMemory::new(64 * 1024);
        let image = mem.load_mlp(&net).unwrap();
        (net, mem, image)
    }

    fn fake_grads(net: &Mlp<Fx32>, scale: f64) -> MlpGrads<Fx32> {
        let mut grads = MlpGrads::zeros_like(net);
        for (l, w) in grads.w.iter_mut().enumerate() {
            let (rows, cols) = w.shape();
            for r in 0..rows {
                for c in 0..cols {
                    w[(r, c)] = Fx32::from_f64(((r * 7 + c * 3 + l) % 11) as f64 * 0.01 * scale);
                }
            }
        }
        for b in &mut grads.b {
            for (i, v) in b.iter_mut().enumerate() {
                *v = Fx32::from_f64(i as f64 * 0.005 * scale);
            }
        }
        grads
    }

    #[test]
    fn hardware_adam_is_bit_exact_vs_software_adam() {
        let (mut net, mut mem, image) = setup();
        let mut unit = AdamUnit::new(AdamConfig::default(), &image);
        let mut sw = Adam::new(&net, AdamConfig::default());
        for step in 0..10 {
            let grads = fake_grads(&net, 1.0 + step as f64 * 0.1);
            unit.step(&mut mem, &image, &grads).unwrap();
            sw.step(&mut net, &grads).unwrap();
        }
        for (l, layer) in image.layers.iter().enumerate() {
            for r in 0..layer.rows {
                for c in 0..layer.cols {
                    assert_eq!(
                        mem.weight(layer, r, c),
                        net.weight(l)[(r, c)],
                        "layer {l} w[{r}][{c}] diverged"
                    );
                }
            }
            for i in 0..layer.rows {
                assert_eq!(mem.bias(layer, i), net.bias(l)[i], "layer {l} bias {i}");
            }
        }
        assert_eq!(unit.steps(), 10);
    }

    #[test]
    fn zero_gradients_leave_image_unchanged() {
        let (net, mut mem, image) = setup();
        let before = mem.as_bytes();
        let mut unit = AdamUnit::new(AdamConfig::default(), &image);
        unit.step(&mut mem, &image, &MlpGrads::zeros_like(&net))
            .unwrap();
        assert_eq!(mem.as_bytes(), before);
    }

    #[test]
    fn mismatched_gradients_rejected() {
        let (_, mut mem, image) = setup();
        let other = Mlp::<Fx32>::new_random(&MlpConfig::new(vec![4, 8, 3]), 1).unwrap();
        let mut unit = AdamUnit::new(AdamConfig::default(), &image);
        let bad = MlpGrads::zeros_like(&other);
        assert!(unit.step(&mut mem, &image, &bad).is_err());
    }
}
