//! Analytic model of the CPU-GPU baseline's accelerator (Titan RTX).
//!
//! We have no Titan RTX; per DESIGN.md §1 the baseline is modelled with
//! the standard launch-overhead + utilization-ramp law that GPU DNN
//! training of *small* MLPs obeys: a training timestep issues dozens of
//! small kernels whose fixed launch cost dominates at small batch sizes,
//! so hardware utilization — and therefore IPS — "linearly increases as
//! the batch size increases" (paper §VI-C). Constants are calibrated to
//! the paper's reported ratios: FIXAR's accelerator beats the GPU by
//! 5.5× at the largest batch, and the GPU improves steadily with batch
//! size.

/// Titan-RTX-like accelerator-side latency/throughput model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Fixed per-timestep overhead (kernel launches, sync) in seconds.
    pub launch_overhead_s: f64,
    /// Marginal per-sample compute time at full utilization (s).
    pub per_sample_s: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        // Calibration: ips(512) ≈ 53 826.8 / 5.5 ≈ 9 787 (Fig. 10a's gap)
        // with an asymptote near 12 k IPS.
        Self {
            launch_overhead_s: 9.65e-3,
            per_sample_s: 1.0 / 12_000.0,
        }
    }
}

impl GpuModel {
    /// GPU-side time for one training timestep at the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn timestep_latency_s(&self, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be positive");
        self.launch_overhead_s + batch as f64 * self.per_sample_s
    }

    /// Accelerator-side IPS (samples per second) at the given batch size.
    pub fn ips(&self, batch: usize) -> f64 {
        batch as f64 / self.timestep_latency_s(batch)
    }

    /// Effective hardware utilization: achieved IPS over the asymptotic
    /// peak (what the paper plots as the linearly-rising GPU curve).
    pub fn utilization(&self, batch: usize) -> f64 {
        self.ips(batch) * self.per_sample_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ips_rises_with_batch_size() {
        let gpu = GpuModel::default();
        let ips: Vec<f64> = [64, 128, 256, 512].iter().map(|&b| gpu.ips(b)).collect();
        for w in ips.windows(2) {
            assert!(w[1] > w[0], "GPU IPS must increase with batch: {ips:?}");
        }
    }

    #[test]
    fn calibrated_to_the_paper_gap() {
        let gpu = GpuModel::default();
        // FIXAR reports 53 826.8 IPS vs GPU at batch 512: 5.5× gap.
        let ratio = 53_826.8 / gpu.ips(512);
        assert!((ratio - 5.5).abs() < 0.2, "gap at 512 = {ratio}");
    }

    #[test]
    fn utilization_ramps_toward_one() {
        let gpu = GpuModel::default();
        assert!(gpu.utilization(64) < 0.5);
        assert!(gpu.utilization(4096) > 0.9);
        assert!(gpu.utilization(512) > gpu.utilization(64));
    }

    #[test]
    fn latency_is_affine_in_batch() {
        let gpu = GpuModel::default();
        let t64 = gpu.timestep_latency_s(64);
        let t128 = gpu.timestep_latency_s(128);
        let t256 = gpu.timestep_latency_s(256);
        // Equal second differences under an affine law.
        assert!(((t256 - t128) - 2.0 * (t128 - t64)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let _ = GpuModel::default().timestep_latency_s(0);
    }
}
