//! The top-level accelerator: configuration, loaded state, and the
//! operations the platform invokes.

use fixar_fixed::Fx32;
use fixar_nn::Mlp;
use fixar_pool::{split_ranges, Parallelism};
use fixar_tensor::Matrix;

use crate::core_array::AapCore;
use crate::dataflow::{BatchedInferenceSchedule, InferenceSchedule, Precision, TrainingSchedule};
use crate::error::AccelError;
use crate::memory::{ActivationMemory, GradientMemory, NetworkImage, WeightMemory};
use crate::pe::HalfAct;
use crate::prng::IrwinHallGaussian;

/// Accelerator design parameters; defaults reproduce the paper's U50
/// implementation (2 AAP cores of 16×16 PEs at 164 MHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Number of adaptive array processing cores (paper: 2 across 2 SLRs).
    pub n_cores: usize,
    /// PE-array rows per core (matrix columns per tile).
    pub pe_rows: usize,
    /// PE-array columns per core (outputs per tile).
    pub pe_cols: usize,
    /// Clock frequency in Hz (paper: 164 MHz).
    pub clock_hz: f64,
    /// Parallel lanes of the Adam weight-update unit (one 512-bit word).
    pub adam_lanes: usize,
    /// Weight-memory capacity in bytes (paper: 1.05 MB model on-chip).
    pub weight_mem_bytes: usize,
    /// Gradient-memory capacity in bytes (same as weight memory).
    pub gradient_mem_bytes: usize,
    /// Activation-memory capacity in bytes (paper: 2.94 KB).
    pub activation_mem_bytes: usize,
    /// Fixed per-sample staging overhead in cycles (batch buffering,
    /// line-buffer refills, inter-phase drains).
    pub sample_overhead_cycles: u64,
    /// Fixed per-layer-phase pipeline overhead in cycles.
    pub phase_overhead_cycles: u64,
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self {
            n_cores: 2,
            pe_rows: 16,
            pe_cols: 16,
            clock_hz: 164e6,
            adam_lanes: 16,
            weight_mem_bytes: 1_150_000,
            gradient_mem_bytes: 1_150_000,
            activation_mem_bytes: 3_010,
            // Per-sample staging (batch buffering, activation-memory
            // traffic, phase sequencing). The paper's own 38 779.8 /
            // 53 826.8 IPS pair implies ≈6 100 cycles per sample per
            // core in half-precision — about 2 500 of which is not tile
            // compute; this constant encodes that.
            sample_overhead_cycles: 2_470,
            phase_overhead_cycles: 8,
        }
    }
}

impl AccelConfig {
    /// Total PEs across all cores (paper: 512).
    pub fn pe_count_total(&self) -> usize {
        self.n_cores * self.pe_rows * self.pe_cols
    }

    /// Peak MAC throughput at full precision (MAC/s).
    pub fn peak_macs_per_s(&self) -> f64 {
        self.pe_count_total() as f64 * self.clock_hz
    }

    fn validate(&self) -> Result<(), AccelError> {
        if self.n_cores == 0 || self.pe_rows == 0 || self.pe_cols == 0 {
            return Err(AccelError::InvalidConfig(
                "cores and PE dimensions must be positive".into(),
            ));
        }
        if self.clock_hz <= 0.0 {
            return Err(AccelError::InvalidConfig("clock must be positive".into()));
        }
        if self.adam_lanes == 0 {
            return Err(AccelError::InvalidConfig(
                "adam_lanes must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Cycle breakdown of one training timestep (feeds Figs. 9 and 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimestepCycles {
    /// Forward-pass cycles across the batch.
    pub forward: u64,
    /// Backward-pass cycles across the batch.
    pub backward: u64,
    /// Adam weight-update cycles.
    pub weight_update: u64,
    /// Current-state actor inference cycles.
    pub inference: u64,
    /// Total cycles.
    pub total: u64,
    /// PE occupancy in `[0, 1]`.
    pub utilization: f64,
    /// Wall-clock seconds at the configured clock.
    pub seconds: f64,
    /// Accelerator IPS for this timestep's batch.
    pub ips: f64,
}

/// The FIXAR accelerator model: on-chip memories, AAP cores, Adam unit,
/// and PRNG, with structural inference and a cycle model for training.
///
/// # Example
///
/// ```
/// use fixar_accel::{AccelConfig, FixarAccelerator, Precision};
/// use fixar_fixed::Fx32;
/// use fixar_nn::{Activation, Mlp, MlpConfig};
///
/// let actor_cfg = MlpConfig::new(vec![4, 32, 2])
///     .with_output_activation(Activation::Tanh);
/// let actor = Mlp::<Fx32>::new_random(&actor_cfg, 0)?;
/// let critic = Mlp::<Fx32>::new_random(&MlpConfig::new(vec![6, 32, 1]), 1)?;
///
/// let mut accel = FixarAccelerator::new(AccelConfig::default())?;
/// accel.load_ddpg(&actor, &critic)?;
/// let state = vec![Fx32::from_f64(0.1); 4];
/// let (action, cycles) = accel.actor_inference(&state, Precision::Full32)?;
/// assert_eq!(action.len(), 2);
/// assert!(cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FixarAccelerator {
    cfg: AccelConfig,
    weight_mem: WeightMemory,
    gradient_mem: GradientMemory,
    activation_mem: ActivationMemory,
    core: AapCore,
    prng: IrwinHallGaussian,
    actor_image: Option<NetworkImage>,
    critic_image: Option<NetworkImage>,
    par: Parallelism,
}

impl FixarAccelerator {
    /// Creates an accelerator with empty memories.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for malformed parameters.
    pub fn new(cfg: AccelConfig) -> Result<Self, AccelError> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            weight_mem: WeightMemory::new(cfg.weight_mem_bytes),
            gradient_mem: GradientMemory::new(cfg.gradient_mem_bytes),
            activation_mem: ActivationMemory::new(cfg.activation_mem_bytes),
            core: AapCore::new(cfg.pe_rows, cfg.pe_cols),
            prng: IrwinHallGaussian::new(0xF1BA_0001),
            actor_image: None,
            critic_image: None,
            // One lane per modelled AAP core by default; FIXAR_WORKERS
            // overrides. Any count is bit-exact — the cross-core
            // reduction below always runs in fixed core order.
            par: Parallelism::from_env_or(cfg.n_cores),
        })
    }

    /// The parallelism handle the structural paths shard over.
    pub fn parallelism(&self) -> &Parallelism {
        &self.par
    }

    /// Replaces the parallelism handle (bit-exact at any worker count;
    /// only simulation wall-clock changes).
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// Design parameters.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Weight memory (inspection/serialization).
    pub fn weight_memory(&self) -> &WeightMemory {
        &self.weight_mem
    }

    /// Bytes of model state currently on-chip.
    pub fn model_bytes(&self) -> usize {
        self.weight_mem.used_bytes()
    }

    /// Loads the DDPG actor/critic pair into the on-chip memories.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::MemoryOverflow`] when the padded weight
    /// image, the mirrored gradient image, or a single sample's
    /// activations exceed on-chip capacity.
    pub fn load_ddpg(&mut self, actor: &Mlp<Fx32>, critic: &Mlp<Fx32>) -> Result<(), AccelError> {
        self.activation_mem.check_fit(actor.layer_sizes())?;
        self.activation_mem.check_fit(critic.layer_sizes())?;
        self.weight_mem.clear();
        self.gradient_mem.clear();
        let actor_image = self.weight_mem.load_mlp(actor)?;
        let critic_image = self.weight_mem.load_mlp(critic)?;
        self.gradient_mem.allocate_like(&actor_image)?;
        self.gradient_mem.allocate_like(&critic_image)?;
        self.actor_image = Some(actor_image);
        self.critic_image = Some(critic_image);
        Ok(())
    }

    /// Refreshes the weight memory after host-side training updates (the
    /// Adam unit's write-back, batched).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FixarAccelerator::load_ddpg`].
    pub fn refresh_weights(
        &mut self,
        actor: &Mlp<Fx32>,
        critic: &Mlp<Fx32>,
    ) -> Result<(), AccelError> {
        self.load_ddpg(actor, critic)
    }

    /// Structural actor inference through the AAP cores: column-wise
    /// dataflow with intra-layer parallelism, bias add, activation unit.
    /// Returns the action and the cycle count of the schedule.
    ///
    /// In `Half16` mode activations are squeezed through 16-bit lanes
    /// between layers, doubling MAC throughput — the configurable
    /// datapath of Fig. 5.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Shape`] if no network is loaded or the state
    /// length differs from the actor's input width.
    pub fn actor_inference(
        &mut self,
        state: &[Fx32],
        precision: Precision,
    ) -> Result<(Vec<Fx32>, u64), AccelError> {
        let image = self
            .actor_image
            .clone()
            .ok_or_else(|| AccelError::Shape("no actor loaded".into()))?;
        if state.len() != image.sizes[0] {
            return Err(AccelError::Shape(format!(
                "state has {} elements, actor expects {}",
                state.len(),
                image.sizes[0]
            )));
        }
        let out = self.forward_image(&image, state, precision);
        let cycles = InferenceSchedule::for_mlp(&self.cfg, &image.sizes, precision).cycles;
        Ok((out, cycles))
    }

    /// Structural critic inference (Q-value of a state/action pair).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Shape`] if no network is loaded or the input
    /// length differs from the critic's input width.
    pub fn critic_inference(
        &mut self,
        state_action: &[Fx32],
        precision: Precision,
    ) -> Result<(Vec<Fx32>, u64), AccelError> {
        let image = self
            .critic_image
            .clone()
            .ok_or_else(|| AccelError::Shape("no critic loaded".into()))?;
        if state_action.len() != image.sizes[0] {
            return Err(AccelError::Shape(format!(
                "input has {} elements, critic expects {}",
                state_action.len(),
                image.sizes[0]
            )));
        }
        let out = self.forward_image(&image, state_action, precision);
        let cycles = InferenceSchedule::for_mlp(&self.cfg, &image.sizes, precision).cycles;
        Ok((out, cycles))
    }

    /// Runs a forward pass through a loaded image using the structural
    /// AAP-core path (bit-exact vs `fixar-nn` in full precision).
    fn forward_image(
        &self,
        image: &NetworkImage,
        input: &[Fx32],
        precision: Precision,
    ) -> Vec<Fx32> {
        let n = image.num_layers();
        let mut act = input.to_vec();
        for (l, layer) in image.layers.iter().enumerate() {
            let w = self.weight_mem.layer_matrix(layer);
            let mut partials = vec![vec![Fx32::ZERO; layer.rows]; self.cfg.n_cores];
            // The AAP cores genuinely run concurrently: one thread per
            // core computes its interleaved column share. The reduction
            // below is in fixed core order, so the result is independent
            // of thread scheduling.
            let half: Vec<HalfAct> = match precision {
                Precision::Half16 => act.iter().map(|v| HalfAct::from_f64(v.to_f64())).collect(),
                Precision::Full32 => Vec::new(),
            };
            let n_cores = self.cfg.n_cores;
            let core = &self.core;
            let act_ref = &act;
            let half_ref = &half;
            let w_ref = &w;
            let run_core = |c: usize, partial: &mut Vec<Fx32>| match precision {
                Precision::Full32 => {
                    core.mvm_columns(w_ref, act_ref, c, n_cores, partial);
                }
                Precision::Half16 => {
                    core.mvm_columns_half(w_ref, half_ref, c, n_cores, partial);
                }
            };
            // The AAP cores run on the persistent worker pool (no
            // per-call thread spawning); on the sequential handle — or
            // nested under a row-sharded batch — they run in core order
            // on this thread. Either way each core writes its own
            // partial, so the schedule cannot change the result.
            if self.par.shards(n_cores) <= 1 {
                for (c, partial) in partials.iter_mut().enumerate() {
                    run_core(c, partial);
                }
            } else {
                let pool = self.par.pool().expect("shards > 1 implies a pool");
                pool.scope(|scope| {
                    let run_core = &run_core;
                    for (c, partial) in partials.iter_mut().enumerate() {
                        scope.execute(move || run_core(c, partial));
                    }
                })
                .unwrap_or_else(|e| panic!("AAP core task panicked: {e}"));
            }
            // Cross-core accumulator tree, core order.
            let mut z = vec![Fx32::ZERO; layer.rows];
            for partial in &partials {
                for (zi, &p) in z.iter_mut().zip(partial) {
                    *zi += p;
                }
            }
            for (i, zi) in z.iter_mut().enumerate() {
                *zi += self.weight_mem.bias(layer, i);
            }
            let activation = if l + 1 == n {
                image.output_activation
            } else {
                image.hidden_activation
            };
            for zi in z.iter_mut() {
                *zi = activation.apply(*zi);
            }
            act = z;
        }
        act
    }

    /// Batched structural actor inference: one minibatch sample per row
    /// of `states`, every row executed through the same AAP-core
    /// column-wise dataflow as [`FixarAccelerator::actor_inference`]
    /// (bit-exact vs `Mlp::forward_batch` in full precision), with the
    /// cycle count from the **batched** schedule — samples sharded
    /// across cores, one pipeline fill per layer per batch. Takes
    /// `&self`: any number of serving threads can run batched inference
    /// over one loaded accelerator concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Shape`] if no network is loaded or
    /// `states.cols()` differs from the actor's input width.
    pub fn actor_inference_batch(
        &self,
        states: &Matrix<Fx32>,
        precision: Precision,
    ) -> Result<(Matrix<Fx32>, u64), AccelError> {
        let image = self
            .actor_image
            .as_ref()
            .ok_or_else(|| AccelError::Shape("no actor loaded".into()))?;
        self.batch_inference(image, states, precision)
    }

    /// Batched structural critic inference (Q-values of a batch of
    /// state/action rows). See [`FixarAccelerator::actor_inference_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Shape`] if no network is loaded or
    /// `inputs.cols()` differs from the critic's input width.
    pub fn critic_inference_batch(
        &self,
        inputs: &Matrix<Fx32>,
        precision: Precision,
    ) -> Result<(Matrix<Fx32>, u64), AccelError> {
        let image = self
            .critic_image
            .as_ref()
            .ok_or_else(|| AccelError::Shape("no critic loaded".into()))?;
        self.batch_inference(image, inputs, precision)
    }

    fn batch_inference(
        &self,
        image: &NetworkImage,
        inputs: &Matrix<Fx32>,
        precision: Precision,
    ) -> Result<(Matrix<Fx32>, u64), AccelError> {
        if inputs.cols() != image.sizes[0] {
            return Err(AccelError::Shape(format!(
                "batch rows have {} elements, network expects {}",
                inputs.cols(),
                image.sizes[0]
            )));
        }
        let out_dim = *image.sizes.last().expect("loaded image has layers");
        let mut out = Matrix::zeros(inputs.rows(), out_dim);
        // Batch rows shard across the pool (disjoint output rows, each
        // row's dataflow unchanged — bit-exact at any worker count);
        // `forward_image` detects it is on a pool thread and runs its
        // per-core loop inline instead of nesting a scope.
        let shards = self.par.shards(inputs.rows());
        if shards <= 1 {
            for b in 0..inputs.rows() {
                let y = self.forward_image(image, inputs.row(b), precision);
                out.row_mut(b).copy_from_slice(&y);
            }
        } else {
            let pool = self.par.pool().expect("shards > 1 implies a pool");
            pool.scope(|scope| {
                let mut rest = out.as_mut_slice();
                for range in split_ranges(inputs.rows(), shards) {
                    let (chunk, tail) = rest.split_at_mut(range.len() * out_dim);
                    rest = tail;
                    scope.execute(move || {
                        for (local, b) in range.enumerate() {
                            let y = self.forward_image(image, inputs.row(b), precision);
                            chunk[local * out_dim..(local + 1) * out_dim].copy_from_slice(&y);
                        }
                    });
                }
            })
            .unwrap_or_else(|e| panic!("batched inference task panicked: {e}"));
        }
        let cycles =
            BatchedInferenceSchedule::for_mlp(&self.cfg, &image.sizes, inputs.rows(), precision)
                .cycles;
        Ok((out, cycles))
    }

    /// Cycle breakdown for one training timestep of the loaded DDPG pair
    /// (the functional training math runs in `fixar-rl`, bit-equivalent
    /// by the kernel-equality contract; this model provides the timing).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Shape`] if no networks are loaded, or
    /// [`AccelError::InvalidConfig`] for a zero batch.
    pub fn train_timestep_cycles(
        &self,
        batch: usize,
        precision: Precision,
    ) -> Result<TimestepCycles, AccelError> {
        if batch == 0 {
            return Err(AccelError::InvalidConfig("batch must be positive".into()));
        }
        let actor = self
            .actor_image
            .as_ref()
            .ok_or_else(|| AccelError::Shape("no actor loaded".into()))?;
        let critic = self
            .critic_image
            .as_ref()
            .ok_or_else(|| AccelError::Shape("no critic loaded".into()))?;
        let sched =
            TrainingSchedule::for_ddpg(&self.cfg, &actor.sizes, &critic.sizes, batch, precision);
        Ok(TimestepCycles {
            forward: sched.forward_cycles,
            backward: sched.backward_cycles,
            weight_update: sched.weight_update_cycles,
            inference: sched.inference_cycles,
            total: sched.total_cycles(),
            utilization: sched.utilization(),
            seconds: sched.latency_s(&self.cfg),
            ips: sched.ips(&self.cfg),
        })
    }

    /// Cycle breakdown for one training timestep driven by the batched
    /// matrix-matrix kernels (see
    /// [`TrainingSchedule::for_ddpg_batched`]) — the timing twin of
    /// `Ddpg::train_minibatch`.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Shape`] if no networks are loaded, or
    /// [`AccelError::InvalidConfig`] for a zero batch.
    pub fn train_timestep_cycles_batched(
        &self,
        batch: usize,
        precision: Precision,
    ) -> Result<TimestepCycles, AccelError> {
        if batch == 0 {
            return Err(AccelError::InvalidConfig("batch must be positive".into()));
        }
        let actor = self
            .actor_image
            .as_ref()
            .ok_or_else(|| AccelError::Shape("no actor loaded".into()))?;
        let critic = self
            .critic_image
            .as_ref()
            .ok_or_else(|| AccelError::Shape("no critic loaded".into()))?;
        let sched = TrainingSchedule::for_ddpg_batched(
            &self.cfg,
            &actor.sizes,
            &critic.sizes,
            batch,
            precision,
        );
        Ok(TimestepCycles {
            forward: sched.forward_cycles,
            backward: sched.backward_cycles,
            weight_update: sched.weight_update_cycles,
            inference: sched.inference_cycles,
            total: sched.total_cycles(),
            utilization: sched.utilization(),
            seconds: sched.latency_s(&self.cfg),
            ips: sched.ips(&self.cfg),
        })
    }

    /// Exploration noise from the hardware PRNG (Irwin–Hall over the
    /// xorshift LFSR), injected after the actor's output layer.
    pub fn exploration_noise(&mut self, dim: usize, sigma: f64) -> Vec<Fx32> {
        self.prng.noise_vector(dim, sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixar_nn::{Activation, MlpConfig};

    fn paper_agent() -> (Mlp<Fx32>, Mlp<Fx32>) {
        let actor = Mlp::new_random(
            &MlpConfig::new(vec![17, 400, 300, 6]).with_output_activation(Activation::Tanh),
            3,
        )
        .unwrap();
        let critic = Mlp::new_random(&MlpConfig::new(vec![23, 400, 300, 1]), 4).unwrap();
        (actor, critic)
    }

    fn small_agent() -> (Mlp<Fx32>, Mlp<Fx32>) {
        let actor = Mlp::new_random(
            &MlpConfig::new(vec![5, 24, 18, 2]).with_output_activation(Activation::Tanh),
            3,
        )
        .unwrap();
        let critic = Mlp::new_random(&MlpConfig::new(vec![7, 24, 18, 1]), 4).unwrap();
        (actor, critic)
    }

    #[test]
    fn paper_model_fits_on_chip() {
        let (actor, critic) = paper_agent();
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&actor, &critic).unwrap();
        let mb = accel.model_bytes() as f64 / 1e6;
        assert!((1.0..=1.15).contains(&mb), "model bytes {mb} MB");
    }

    #[test]
    fn structural_inference_is_bit_exact_vs_software() {
        let (actor, critic) = small_agent();
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&actor, &critic).unwrap();
        let state: Vec<Fx32> = (0..5)
            .map(|i| Fx32::from_f64(i as f64 * 0.2 - 0.5))
            .collect();
        let (hw, cycles) = accel.actor_inference(&state, Precision::Full32).unwrap();
        let sw = actor.forward(&state).unwrap();
        assert_eq!(hw, sw, "accelerator and fixar-nn must agree bit-for-bit");
        assert!(cycles > 0);

        let sa: Vec<Fx32> = (0..7).map(|i| Fx32::from_f64(i as f64 * 0.1)).collect();
        let (hw_q, _) = accel.critic_inference(&sa, Precision::Full32).unwrap();
        let sw_q = critic.forward(&sa).unwrap();
        assert_eq!(hw_q, sw_q);
    }

    #[test]
    fn half_precision_inference_tracks_full() {
        let (actor, critic) = small_agent();
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&actor, &critic).unwrap();
        let state: Vec<Fx32> = (0..5)
            .map(|i| Fx32::from_f64((i as f64 * 0.7).sin()))
            .collect();
        let (full, _) = accel.actor_inference(&state, Precision::Full32).unwrap();
        let (half, _) = accel.actor_inference(&state, Precision::Half16).unwrap();
        for (f, h) in full.iter().zip(&half) {
            assert!((f.to_f64() - h.to_f64()).abs() < 0.05, "full={f} half={h}");
        }
        // On paper-scale layers the lane doubling shows up in the cycle
        // count (the tiny test net hides under tile quantization).
        let (paper_actor, paper_critic) = paper_agent();
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&paper_actor, &paper_critic).unwrap();
        let state = vec![Fx32::from_f64(0.1); 17];
        let (_, c_full) = accel.actor_inference(&state, Precision::Full32).unwrap();
        let (_, c_half) = accel.actor_inference(&state, Precision::Half16).unwrap();
        assert!(
            c_half < c_full,
            "half mode must be faster: {c_half} vs {c_full}"
        );
    }

    #[test]
    fn inference_requires_loaded_network() {
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        let state = vec![Fx32::ZERO; 4];
        assert!(accel.actor_inference(&state, Precision::Full32).is_err());
    }

    #[test]
    fn wrong_state_width_rejected() {
        let (actor, critic) = small_agent();
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&actor, &critic).unwrap();
        let state = vec![Fx32::ZERO; 3];
        assert!(matches!(
            accel.actor_inference(&state, Precision::Full32),
            Err(AccelError::Shape(_))
        ));
    }

    #[test]
    fn timestep_cycles_partition_the_total() {
        let (actor, critic) = paper_agent();
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&actor, &critic).unwrap();
        let t = accel.train_timestep_cycles(256, Precision::Half16).unwrap();
        assert_eq!(
            t.total,
            t.forward + t.backward + t.weight_update + t.inference
        );
        assert!(t.ips > 0.0 && t.seconds > 0.0);
        assert!((0.0..=1.0).contains(&t.utilization));
        assert!(accel.train_timestep_cycles(0, Precision::Full32).is_err());
    }

    #[test]
    fn prng_noise_has_requested_dimension() {
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        let noise = accel.exploration_noise(6, 0.1);
        assert_eq!(noise.len(), 6);
        assert!(noise.iter().any(|v| v.to_f64() != 0.0));
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = AccelConfig {
            n_cores: 0,
            ..AccelConfig::default()
        };
        assert!(FixarAccelerator::new(cfg).is_err());
        let cfg = AccelConfig {
            clock_hz: 0.0,
            ..AccelConfig::default()
        };
        assert!(FixarAccelerator::new(cfg).is_err());
        let cfg = AccelConfig {
            adam_lanes: 0,
            ..AccelConfig::default()
        };
        assert!(FixarAccelerator::new(cfg).is_err());
    }

    #[test]
    fn default_config_matches_paper_design_point() {
        let cfg = AccelConfig::default();
        assert_eq!(cfg.pe_count_total(), 512);
        assert_eq!(cfg.clock_hz, 164e6);
        // Peak: 512 PEs × 164 MHz = 84 GMAC/s.
        assert!((cfg.peak_macs_per_s() / 1e9 - 83.97).abs() < 0.1);
    }
}
