//! Cycle model of the deadline micro-batch serving pipeline.
//!
//! `fixar-serve` coalesces concurrent requests into micro-batches
//! (flush on `max_batch` or `max_delay`, whichever first). This module
//! answers the hardware-side question: **given an offered load, what
//! micro-batch size does the batcher settle into, and what does that do
//! to PE utilization, throughput, and latency?**
//!
//! The model is a deterministic steady-state fixed point. With
//! per-shard inter-arrival time `a` (cycles) and batched inference cost
//! `infer(b)` from [`BatchedInferenceSchedule`], the batch that forms
//! while the previous one is being served — plus whatever the deadline
//! window admits — is
//!
//! ```text
//! b' = min(max_batch, max(1, ⌊infer(b)/a⌋ + ⌊deadline/a⌋ + 1))
//! ```
//!
//! iterated to its least fixed point. Light load with a zero deadline
//! settles at `b* = 1` (every request served alone, lowest latency,
//! worst PE occupancy); raising either the load or the deadline grows
//! `b*` and with it utilization — the Fig. 8 story (wider effective
//! parallelism at larger batch) applied to the request path rather than
//! the training loop.

use crate::accelerator::AccelConfig;
use crate::dataflow::{BatchedInferenceSchedule, Precision};

/// Steady-state model of one serving shard under deadline
/// micro-batching.
///
/// # Example
///
/// ```
/// use fixar_accel::{AccelConfig, MicroBatchServing, Precision};
///
/// let cfg = AccelConfig::default();
/// let sizes = [17, 400, 300, 6]; // HalfCheetah actor
/// // Light load (one request per 100k cycles), no deadline: requests
/// // are served alone.
/// let light = MicroBatchServing::for_actor(&cfg, &sizes, Precision::Half16, 64, 0, 100_000, 1);
/// assert_eq!(light.steady_batch, 1);
/// // Heavy load (one request per 50 cycles): the batcher coalesces,
/// // PE occupancy and throughput rise.
/// let heavy = MicroBatchServing::for_actor(&cfg, &sizes, Precision::Half16, 64, 0, 50, 1);
/// assert!(heavy.steady_batch > light.steady_batch);
/// assert!(heavy.utilization() > light.utilization());
/// assert!(heavy.actions_per_sec(&cfg) > light.actions_per_sec(&cfg));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MicroBatchServing {
    /// Batch-size cap of the batcher (`ServeConfig::max_batch`).
    pub max_batch: usize,
    /// Deadline window in cycles (`ServeConfig::max_delay` × clock).
    pub deadline_cycles: u64,
    /// Mean inter-arrival time of requests **at this shard**, in
    /// cycles (the front-door inter-arrival × shard count, since
    /// routing is round-robin).
    pub shard_arrival_cycles: u64,
    /// Shards the front door round-robins over.
    pub shards: usize,
    /// The micro-batch size the shard settles into.
    pub steady_batch: usize,
    /// Inference cycles for one steady-state micro-batch.
    pub infer_cycles: u64,
    /// Cycles between consecutive batch completions: `infer_cycles`
    /// when compute-bound, `steady_batch × shard_arrival_cycles` when
    /// arrival-bound.
    pub inter_departure_cycles: u64,
    /// Arithmetic precision the shard serves at.
    pub precision: Precision,
    schedule: BatchedInferenceSchedule,
}

impl MicroBatchServing {
    /// Solves the steady state for one shard serving an actor given by
    /// its layer widths. `arrival_cycles` is the mean inter-arrival
    /// time of requests at the **front door** (all shards combined);
    /// zero is clamped to one cycle.
    pub fn for_actor(
        cfg: &AccelConfig,
        sizes: &[usize],
        precision: Precision,
        max_batch: usize,
        deadline_cycles: u64,
        arrival_cycles: u64,
        shards: usize,
    ) -> Self {
        let max_batch = max_batch.max(1);
        let shards = shards.max(1);
        let a = (arrival_cycles.max(1)).saturating_mul(shards as u64);
        let infer = |b: usize| BatchedInferenceSchedule::for_mlp(cfg, sizes, b, precision).cycles;
        // Least fixed point of the (monotone, bounded) batch recurrence.
        let mut b = 1usize;
        for _ in 0..64 {
            let next =
                (1 + (infer(b) / a) as usize + (deadline_cycles / a) as usize).min(max_batch);
            if next <= b {
                break;
            }
            b = next;
        }
        let schedule = BatchedInferenceSchedule::for_mlp(cfg, sizes, b, precision);
        let infer_cycles = schedule.cycles;
        Self {
            max_batch,
            deadline_cycles,
            shard_arrival_cycles: a,
            shards,
            steady_batch: b,
            infer_cycles,
            inter_departure_cycles: infer_cycles.max(b as u64 * a),
            precision,
            schedule,
        }
    }

    /// `true` when the shard cannot keep up even at `max_batch`:
    /// requests arrive faster than the largest batch drains them, so
    /// queueing delay grows without bound and the latency estimate
    /// below is a floor, not a prediction.
    pub fn saturated(&self) -> bool {
        self.steady_batch == self.max_batch
            && self.infer_cycles > self.steady_batch as u64 * self.shard_arrival_cycles
    }

    /// PE-array occupancy while serving the steady-state batch.
    pub fn utilization(&self) -> f64 {
        self.schedule.utilization()
    }

    /// Served actions per second across **all** shards (each shard
    /// completes `steady_batch` actions every inter-departure).
    pub fn actions_per_sec(&self, cfg: &AccelConfig) -> f64 {
        self.shards as f64 * self.steady_batch as f64 * cfg.clock_hz
            / self.inter_departure_cycles as f64
    }

    /// Mean request latency in cycles when not [`saturated`]
    /// (collection wait — on average half the window the batch forms
    /// over — plus the batched inference itself).
    ///
    /// [`saturated`]: MicroBatchServing::saturated
    pub fn mean_latency_cycles(&self) -> f64 {
        (self.steady_batch as f64 - 1.0) * self.shard_arrival_cycles as f64 / 2.0
            + self.infer_cycles as f64
    }

    /// [`MicroBatchServing::mean_latency_cycles`] in seconds.
    pub fn mean_latency_s(&self, cfg: &AccelConfig) -> f64 {
        self.mean_latency_cycles() / cfg.clock_hz
    }

    /// Throughput gain over serving every request alone (batch 1) on
    /// the same shard count — what micro-batching itself buys.
    pub fn speedup_vs_unbatched(&self, cfg: &AccelConfig, sizes: &[usize]) -> f64 {
        let single = BatchedInferenceSchedule::for_mlp(cfg, sizes, 1, self.precision);
        let unbatched = self.shards as f64 * cfg.clock_hz
            / (single.cycles.max(self.shard_arrival_cycles) as f64);
        self.actions_per_sec(cfg) / unbatched
    }

    /// Occupancy of the SIMD lanes at the steady batch (the Fig. 8
    /// lanes story on the request path): half-precision packs 2 MACs
    /// per PE per cycle, so small micro-batches strand lane slots that
    /// a fuller batcher fills.
    pub fn lane_utilization(&self, lanes: usize) -> f64 {
        self.schedule.lane_utilization(lanes)
    }

    /// The steady-state batched schedule the model settled on.
    pub fn schedule(&self) -> &BatchedInferenceSchedule {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTOR: [usize; 4] = [17, 400, 300, 6];

    fn model(max_batch: usize, deadline: u64, arrival: u64, shards: usize) -> MicroBatchServing {
        MicroBatchServing::for_actor(
            &AccelConfig::default(),
            &ACTOR,
            Precision::Half16,
            max_batch,
            deadline,
            arrival,
            shards,
        )
    }

    #[test]
    fn light_load_zero_deadline_serves_singletons() {
        let m = model(64, 0, 10_000_000, 1);
        assert_eq!(m.steady_batch, 1);
        assert!(!m.saturated());
        // Inter-departure is arrival-bound: one action per arrival.
        assert_eq!(m.inter_departure_cycles, m.shard_arrival_cycles);
    }

    #[test]
    fn heavier_load_grows_the_batch_and_utilization() {
        let mut prev_batch = 0usize;
        let mut prev_util = 0.0f64;
        for arrival in [100_000u64, 10_000, 1_000, 100, 10] {
            let m = model(256, 0, arrival, 1);
            assert!(
                m.steady_batch >= prev_batch,
                "batch shrank as load rose: {} -> {} at arrival {arrival}",
                prev_batch,
                m.steady_batch
            );
            assert!(m.utilization() >= prev_util - 1e-12);
            prev_batch = m.steady_batch;
            prev_util = m.utilization();
        }
        assert!(prev_batch > 1, "heavy load never coalesced");
    }

    #[test]
    fn deadline_trades_latency_for_batch_at_light_load() {
        let none = model(64, 0, 50_000, 1);
        let some = model(64, 200_000, 50_000, 1);
        assert!(some.steady_batch > none.steady_batch);
        assert!(some.mean_latency_cycles() > none.mean_latency_cycles());
        assert!(some.utilization() > none.utilization());
    }

    #[test]
    fn sharding_shrinks_per_shard_batches_but_scales_throughput_when_saturated() {
        let cfg = AccelConfig::default();
        let one = model(64, 0, 20, 1);
        let four = model(64, 0, 20, 4);
        assert!(one.saturated());
        assert!(four.steady_batch <= one.steady_batch);
        // Under saturation, extra shards add real throughput.
        assert!(four.actions_per_sec(&cfg) > one.actions_per_sec(&cfg));
    }

    #[test]
    fn batching_beats_unbatched_serving_under_load() {
        let cfg = AccelConfig::default();
        let m = model(128, 0, 100, 1);
        assert!(m.steady_batch > 1);
        assert!(
            m.speedup_vs_unbatched(&cfg, &ACTOR) > 1.0,
            "micro-batching should outperform singleton serving under load"
        );
    }

    #[test]
    fn lane_utilization_improves_with_coalescing() {
        let light = model(64, 0, 10_000_000, 1);
        let heavy = model(64, 0, 50, 1);
        assert!(heavy.lane_utilization(2) >= light.lane_utilization(2));
    }

    #[test]
    fn steady_batch_never_exceeds_cap() {
        for arrival in [1u64, 10, 100] {
            let m = model(16, 1_000_000, arrival, 2);
            assert!(m.steady_batch <= 16);
        }
    }
}
