//! Cycle schedules for the two dataflows of §V-B: intra-layer parallelism
//! (inference) and intra-batch parallelism (training).

use crate::accelerator::AccelConfig;
use crate::pe::PeMode;

/// Activation precision regime of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// 32-bit fixed-point activations (before the quantization delay).
    #[default]
    Full32,
    /// 16-bit quantized activations (after QAT freezes): every
    /// activation-operand MAC doubles in throughput on the configurable
    /// PEs. Error-propagation MVMs keep 32-bit operands and do not
    /// double (weights and gradients stay 32-bit, per Algorithm 1).
    Half16,
}

impl Precision {
    fn act_mode(self) -> PeMode {
        match self {
            Precision::Full32 => PeMode::Full,
            Precision::Half16 => PeMode::Half,
        }
    }
}

/// Tile passes for a `p × q` MVM on one core (activation operand).
fn tiles(cfg: &AccelConfig, p: usize, q: usize, n_cores: usize, precision: Precision) -> u64 {
    let col_width = match precision.act_mode() {
        PeMode::Full => cfg.pe_rows,
        PeMode::Half => cfg.pe_rows * 2,
    };
    (p.div_ceil(cfg.pe_cols) * q.div_ceil(col_width * n_cores)) as u64
}

/// Tile passes for the transposed (error-propagation) MVM — always
/// full-precision operands.
fn tiles_t(cfg: &AccelConfig, p: usize, q: usize, n_cores: usize) -> u64 {
    (q.div_ceil(cfg.pe_cols) * p.div_ceil(cfg.pe_rows * n_cores)) as u64
}

/// Exact MAC count of an MLP forward pass.
fn mlp_macs(sizes: &[usize]) -> u64 {
    sizes.windows(2).map(|w| (w[0] * w[1]) as u64).sum()
}

/// Ideal speedup of sharding `batch` samples contiguously across
/// `lanes` parallel lanes with a barrier join: the step completes when
/// the longest lane (`ceil(batch / lanes)` samples) finishes. An empty
/// batch is the single-lane degenerate case (speedup 1).
fn shard_lane_speedup(batch: usize, lanes: usize) -> f64 {
    if batch == 0 {
        return 1.0;
    }
    batch as f64 / batch.div_ceil(lanes.max(1)) as f64
}

/// Fraction of `lanes` kept busy under the same sharding: always
/// exactly `speedup / lanes`, i.e. `batch / (lanes · ceil(batch /
/// lanes))` for a non-empty batch and `1 / lanes` for an empty one.
fn shard_lane_utilization(batch: usize, lanes: usize) -> f64 {
    shard_lane_speedup(batch, lanes) / lanes.max(1) as f64
}

/// Parameter count (weights + biases) the Adam unit touches for one
/// DDPG actor/critic pair.
fn ddpg_params(actor_sizes: &[usize], critic_sizes: &[usize]) -> u64 {
    mlp_macs(actor_sizes)
        + actor_sizes[1..].iter().sum::<usize>() as u64
        + mlp_macs(critic_sizes)
        + critic_sizes[1..].iter().sum::<usize>() as u64
}

/// Ideal full-occupancy cycles of one DDPG training timestep: exact MAC
/// work across all cores. Forward MACs and gradient outer products ride
/// the half-precision lanes after quantization; error propagation keeps
/// 32-bit operands. Identical for the per-sample and batched schedules —
/// the batched kernels do the same arithmetic.
fn ddpg_ideal_cycles(
    cfg: &AccelConfig,
    actor_sizes: &[usize],
    critic_sizes: &[usize],
    batch: usize,
    precision: Precision,
) -> f64 {
    let lanes = match precision {
        Precision::Full32 => 1.0,
        Precision::Half16 => 2.0,
    };
    let per_sample_act_macs = 3.0 * mlp_macs(critic_sizes) as f64
        + 2.0 * mlp_macs(actor_sizes) as f64 // forwards
        + mlp_macs(critic_sizes) as f64
        + mlp_macs(actor_sizes) as f64; // gradient outer products
    let per_sample_err_macs = 2.0 * mlp_macs(critic_sizes) as f64 + mlp_macs(actor_sizes) as f64;
    batch as f64 * (per_sample_act_macs / lanes + per_sample_err_macs) / cfg.pe_count_total() as f64
}

/// Cycle schedule for one forward inference through an MLP with
/// **intra-layer parallelism**: matrix columns interleave across all `N`
/// cores, so a single vector runs `N×` faster (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceSchedule {
    /// Total cycles including per-layer pipeline overheads.
    pub cycles: u64,
    /// Cycles that did useful MAC work at full PE occupancy.
    pub ideal_cycles: f64,
    /// Exact MACs performed.
    pub macs: u64,
}

impl InferenceSchedule {
    /// Builds the schedule for a network given by its layer widths.
    pub fn for_mlp(cfg: &AccelConfig, sizes: &[usize], precision: Precision) -> Self {
        let mut cycles = 0u64;
        let mut ideal = 0.0f64;
        let lanes = match precision {
            Precision::Full32 => 1.0,
            Precision::Half16 => 2.0,
        };
        for w in sizes.windows(2) {
            let (q, p) = (w[0], w[1]);
            cycles += tiles(cfg, p, q, cfg.n_cores, precision) + cfg.phase_overhead_cycles;
            ideal += (p * q) as f64 / (cfg.pe_count_total() as f64 * lanes);
        }
        Self {
            cycles,
            ideal_cycles: ideal,
            macs: mlp_macs(sizes),
        }
    }

    /// PE-array occupancy of the schedule (1.0 = every PE busy every
    /// cycle).
    pub fn utilization(&self) -> f64 {
        self.ideal_cycles / self.cycles as f64
    }

    /// Wall-clock latency at the configured clock.
    pub fn latency_s(&self, cfg: &AccelConfig) -> f64 {
        self.cycles as f64 / cfg.clock_hz
    }
}

/// Cycle schedule for one training timestep of the DDPG agent with
/// **intra-batch parallelism**: each core processes its share of the
/// batch independently (paper §V-B), then the Adam unit updates weights
/// from the accumulated gradients, and the actor runs one inference for
/// the current environment state (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingSchedule {
    /// Batch size scheduled.
    pub batch: usize,
    /// Cycles in forward passes (target nets, critic, actor).
    pub forward_cycles: u64,
    /// Cycles in backward passes (error MVMs + gradient outer products).
    pub backward_cycles: u64,
    /// Cycles in the Adam weight-update unit.
    pub weight_update_cycles: u64,
    /// Cycles for the single current-state actor inference.
    pub inference_cycles: u64,
    /// Ideal full-occupancy cycles (utilization denominator).
    pub ideal_cycles: f64,
}

impl TrainingSchedule {
    /// Builds the schedule for one timestep: per-sample phase sequence
    /// (target actor FP, target critic FP, critic FP/BP for the TD
    /// regression, actor FP + critic FP/BP + actor BP for the policy
    /// gradient), batch distributed over the cores.
    pub fn for_ddpg(
        cfg: &AccelConfig,
        actor_sizes: &[usize],
        critic_sizes: &[usize],
        batch: usize,
        precision: Precision,
    ) -> Self {
        let one = 1; // per-sample MVMs run on a single core (intra-batch)

        let fwd = |sizes: &[usize]| -> u64 {
            sizes
                .windows(2)
                .map(|w| tiles(cfg, w[1], w[0], one, precision) + cfg.phase_overhead_cycles)
                .sum()
        };
        // Backward error propagation: Wᵀ·err, full-precision operands.
        let bwd_err = |sizes: &[usize]| -> u64 {
            sizes
                .windows(2)
                .map(|w| tiles_t(cfg, w[1], w[0], one) + cfg.phase_overhead_cycles)
                .sum()
        };
        // Gradient outer products err ⊗ act cost exactly like forward
        // passes: the activation operand rides the 16-bit lanes after
        // quantization (the produced gradients stay 32-bit in the
        // gradient memory, which accumulates in PE-local registers and
        // writes back once per timestep).
        let bwd_grad = &fwd;

        // Per-sample cycle cost, Fig. 3 order.
        let per_sample_fwd = fwd(actor_sizes)      // target actor FP (s')
            + fwd(critic_sizes)                    // target critic FP (s', a')
            + fwd(critic_sizes)                    // critic FP (s, a)
            + fwd(actor_sizes)                     // actor FP (s)
            + fwd(critic_sizes); // critic FP (s, π(s))
        let per_sample_bwd = bwd_err(critic_sizes) + bwd_grad(critic_sizes) // critic BP+grad
            + bwd_err(critic_sizes)                // critic BP for the actor (no grad)
            + bwd_err(actor_sizes)
            + bwd_grad(actor_sizes); // actor BP+grad
        let per_sample = per_sample_fwd + per_sample_bwd + cfg.sample_overhead_cycles;

        let samples_per_core = batch.div_ceil(cfg.n_cores) as u64;
        let forward_cycles = samples_per_core * (per_sample_fwd + cfg.sample_overhead_cycles / 2);
        let backward_cycles = samples_per_core * (per_sample_bwd + cfg.sample_overhead_cycles / 2);
        debug_assert_eq!(
            forward_cycles + backward_cycles,
            samples_per_core * per_sample
        );

        // Adam unit: all parameters once per timestep, `adam_lanes` wide.
        let weight_update_cycles =
            ddpg_params(actor_sizes, critic_sizes).div_ceil(cfg.adam_lanes as u64);

        // One live inference for the environment's current state.
        let inference_cycles = InferenceSchedule::for_mlp(cfg, actor_sizes, precision).cycles;

        Self {
            batch,
            forward_cycles,
            backward_cycles,
            weight_update_cycles,
            inference_cycles,
            ideal_cycles: ddpg_ideal_cycles(cfg, actor_sizes, critic_sizes, batch, precision),
        }
    }

    /// Total cycles of the timestep.
    pub fn total_cycles(&self) -> u64 {
        self.forward_cycles
            + self.backward_cycles
            + self.weight_update_cycles
            + self.inference_cycles
    }

    /// Wall-clock time of the timestep.
    pub fn latency_s(&self, cfg: &AccelConfig) -> f64 {
        self.total_cycles() as f64 / cfg.clock_hz
    }

    /// Accelerator IPS: training samples processed per second (the
    /// paper's throughput metric restricted to the accelerator).
    pub fn ips(&self, cfg: &AccelConfig) -> f64 {
        self.batch as f64 / self.latency_s(cfg)
    }

    /// PE occupancy (the paper reports 92.4%).
    pub fn utilization(&self) -> f64 {
        self.ideal_cycles / self.total_cycles() as f64
    }

    /// Utilization of `lanes` parallel shard lanes at this schedule's
    /// batch size: the batch shards contiguously (the longest lane gets
    /// `ceil(batch / lanes)` samples) and the timestep completes at the
    /// barrier join, so lane utilization is
    /// `batch / (lanes · ceil(batch / lanes))` — the load-balance
    /// factor the Fig. 8/9 throughput arms assume of the intra-batch
    /// parallel lanes (AAP cores in hardware, the persistent worker
    /// pool in the software twin). `1.0` whenever `lanes` divides the
    /// batch, which holds for every paper batch size at 1/2/4/8 lanes.
    pub fn lane_utilization(&self, lanes: usize) -> f64 {
        shard_lane_utilization(self.batch, lanes)
    }

    /// Ideal speedup over one lane at this batch size (the numerator of
    /// [`TrainingSchedule::lane_utilization`]).
    pub fn lane_speedup(&self, lanes: usize) -> f64 {
        shard_lane_speedup(self.batch, lanes)
    }

    /// Cycle schedule for one training timestep driven by the **batched
    /// matrix-matrix kernels** (`gemv_batch` / `gemv_t_batch` /
    /// `add_outer_batch` in `fixar-tensor`): the whole minibatch streams
    /// through each layer phase as one operand while the layer's weight
    /// tile stays resident in the PE array.
    ///
    /// Structurally this changes two things relative to the per-sample
    /// schedule ([`TrainingSchedule::for_ddpg`]), and nothing else — the
    /// MAC work (tile passes per sample) is identical, which mirrors the
    /// software contract that batched kernels are bit-exact with the
    /// per-sample ones:
    ///
    /// 1. **Phase overheads amortize over the batch.** A layer phase is
    ///    set up once per minibatch (weights loaded, pipelines filled),
    ///    not once per sample: per-layer `phase_overhead_cycles` is paid
    ///    `layers × phases` times per timestep instead of
    ///    `layers × phases × samples_per_core` times.
    /// 2. **Per-sample staging collapses into batch staging.** The
    ///    per-sample `sample_overhead_cycles` (batch buffering,
    ///    activation-memory drains between phase sequences) is replaced
    ///    by one `sample_overhead_cycles` charge per minibatch for batch
    ///    assembly plus a small per-sample residue
    ///    (`sample_overhead_cycles / 16`, one activation line-buffer
    ///    refill) that still scales with activation traffic.
    ///
    /// The resulting occupancy approaches the paper's reported 92.4% PE
    /// utilization, which the per-sample schedule structurally cannot
    /// reach — this is the "adaptive parallelism only pays off when the
    /// training step is batched end-to-end" observation of QuaRL and
    /// Adaptive Precision Training.
    pub fn for_ddpg_batched(
        cfg: &AccelConfig,
        actor_sizes: &[usize],
        critic_sizes: &[usize],
        batch: usize,
        precision: Precision,
    ) -> Self {
        let one = 1; // each core streams its shard of the batch
        let samples_per_core = batch.div_ceil(cfg.n_cores) as u64;

        // Tile passes per layer for one sample; the batched kernel runs
        // them back to back with one phase setup per layer per batch.
        let fwd = |sizes: &[usize]| -> u64 {
            sizes
                .windows(2)
                .map(|w| {
                    tiles(cfg, w[1], w[0], one, precision) * samples_per_core
                        + cfg.phase_overhead_cycles
                })
                .sum()
        };
        let bwd_err = |sizes: &[usize]| -> u64 {
            sizes
                .windows(2)
                .map(|w| {
                    tiles_t(cfg, w[1], w[0], one) * samples_per_core + cfg.phase_overhead_cycles
                })
                .sum()
        };
        // Gradient outer products cost like forward passes (activation
        // operand on the 16-bit lanes), as in the per-sample schedule.
        let bwd_grad = &fwd;

        // Fig. 3 phase sequence, whole minibatch per phase.
        let forward_tiles = fwd(actor_sizes)        // target actor FP (s')
            + fwd(critic_sizes)                     // target critic FP (s', a')
            + fwd(critic_sizes)                     // critic FP (s, a)
            + fwd(actor_sizes)                      // actor FP (s)
            + fwd(critic_sizes); // critic FP (s, π(s))
        let backward_tiles = bwd_err(critic_sizes) + bwd_grad(critic_sizes) // critic BP+grad
            + bwd_err(critic_sizes)                 // critic BP for the actor (no grad)
            + bwd_err(actor_sizes)
            + bwd_grad(actor_sizes); // actor BP+grad

        // Batch staging: one full assembly charge per minibatch plus an
        // activation line-buffer residue per sample per core.
        let residue = cfg.sample_overhead_cycles / 16;
        let staging = cfg.sample_overhead_cycles + samples_per_core * residue;
        let forward_cycles = forward_tiles + staging / 2;
        let backward_cycles = backward_tiles + staging.div_ceil(2);

        // Adam unit and live inference: identical to the per-sample
        // schedule (weight update is already batched in hardware), and
        // the ideal MAC cycles match too — the batched kernels do
        // identical arithmetic.
        let weight_update_cycles =
            ddpg_params(actor_sizes, critic_sizes).div_ceil(cfg.adam_lanes as u64);
        let inference_cycles = InferenceSchedule::for_mlp(cfg, actor_sizes, precision).cycles;

        Self {
            batch,
            forward_cycles,
            backward_cycles,
            weight_update_cycles,
            inference_cycles,
            ideal_cycles: ddpg_ideal_cycles(cfg, actor_sizes, critic_sizes, batch, precision),
        }
    }
}

/// Cycle schedule for a **batched inference** through an MLP: the batch
/// splits across the cores (one shard per core, intra-batch parallelism)
/// and each layer phase streams a core's whole shard with one pipeline
/// fill — the inference-side mapping of the batched kernels, used by the
/// multi-environment serving path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchedInferenceSchedule {
    /// Batch size scheduled.
    pub batch: usize,
    /// Total cycles for the whole batch.
    pub cycles: u64,
    /// Ideal full-occupancy cycles.
    pub ideal_cycles: f64,
    /// Exact MACs performed across the batch.
    pub macs: u64,
}

impl BatchedInferenceSchedule {
    /// Builds the schedule for `batch` inputs through a network given by
    /// its layer widths.
    pub fn for_mlp(cfg: &AccelConfig, sizes: &[usize], batch: usize, precision: Precision) -> Self {
        let samples_per_core = batch.div_ceil(cfg.n_cores) as u64;
        let lanes = match precision {
            Precision::Full32 => 1.0,
            Precision::Half16 => 2.0,
        };
        let mut cycles = 0u64;
        let mut ideal = 0.0f64;
        for w in sizes.windows(2) {
            let (q, p) = (w[0], w[1]);
            cycles += tiles(cfg, p, q, 1, precision) * samples_per_core + cfg.phase_overhead_cycles;
            ideal += batch as f64 * (p * q) as f64 / (cfg.pe_count_total() as f64 * lanes);
        }
        Self {
            batch,
            cycles,
            ideal_cycles: ideal,
            macs: mlp_macs(sizes) * batch as u64,
        }
    }

    /// PE-array occupancy of the schedule.
    pub fn utilization(&self) -> f64 {
        self.ideal_cycles / self.cycles as f64
    }

    /// Wall-clock latency at the configured clock.
    pub fn latency_s(&self, cfg: &AccelConfig) -> f64 {
        self.cycles as f64 / cfg.clock_hz
    }

    /// Inferences per second over the batch.
    pub fn ips(&self, cfg: &AccelConfig) -> f64 {
        self.batch as f64 / self.latency_s(cfg)
    }

    /// Utilization of `lanes` parallel shard lanes for this batched
    /// inference (see [`TrainingSchedule::lane_utilization`]).
    pub fn lane_utilization(&self, lanes: usize) -> f64 {
        shard_lane_utilization(self.batch, lanes)
    }

    /// Ideal speedup over one lane at this batch size.
    pub fn lane_speedup(&self, lanes: usize) -> f64 {
        shard_lane_speedup(self.batch, lanes)
    }

    /// Cycle schedule for **several independent networks' batched
    /// inferences fused layer-locked** — the structural twin of the
    /// software stack's multi-kernel scopes (`fixar-nn`'s
    /// `forward_batch_fused`, which serves e.g. TD3's twin critics):
    /// per layer *step*, every network still owning a layer streams its
    /// shard back to back under **one** phase setup/join, so the
    /// per-layer `phase_overhead_cycles` is paid once per step instead
    /// of once per network per layer. The MAC work (tile passes) is
    /// exactly the sum of the individual schedules — fused scheduling
    /// never changes arithmetic, only the join count — so `macs` and
    /// `ideal_cycles` are the per-network sums and the saved cycles are
    /// precisely `Σ_steps (active_networks − 1) × phase_overhead`.
    pub fn for_mlps_fused(
        cfg: &AccelConfig,
        nets: &[&[usize]],
        batch: usize,
        precision: Precision,
    ) -> Self {
        let samples_per_core = batch.div_ceil(cfg.n_cores) as u64;
        let lanes = match precision {
            Precision::Full32 => 1.0,
            Precision::Half16 => 2.0,
        };
        let steps = nets
            .iter()
            .map(|sizes| sizes.len().saturating_sub(1))
            .max()
            .unwrap_or(0);
        let mut cycles = 0u64;
        let mut ideal = 0.0f64;
        let mut macs = 0u64;
        for l in 0..steps {
            let mut active = false;
            for sizes in nets {
                let Some(w) = sizes.windows(2).nth(l) else {
                    continue;
                };
                active = true;
                let (q, p) = (w[0], w[1]);
                cycles += tiles(cfg, p, q, 1, precision) * samples_per_core;
                ideal += batch as f64 * (p * q) as f64 / (cfg.pe_count_total() as f64 * lanes);
                macs += (p * q) as u64 * batch as u64;
            }
            if active {
                cycles += cfg.phase_overhead_cycles;
            }
        }
        Self {
            batch,
            cycles,
            ideal_cycles: ideal,
            macs,
        }
    }
}

/// Cycle model of **double-buffered fleet serving** — the structural
/// twin of `VecTrainer`'s overlap mode: the fleet splits into buffers
/// A (`⌊N/2⌋` envs) and B, and each fleet step runs three phases with
/// barriers between them:
///
/// 1. infer A's actions (accelerator);
/// 2. infer B's actions **while the host steps A's environments** —
///    the phase completes at the slower of the two (the Fig. 9
///    host/accelerator overlap);
/// 3. the host steps B's environments.
///
/// Lockstep serving pays `infer(N) + host(N)` per fleet step; the
/// overlapped schedule hides `min(infer(B), host(A))` cycles behind the
/// other side of phase 2 at the price of split inference (the per-layer
/// pipeline fill is paid once per buffer) and two extra phase barriers.
/// Work is conserved — both modes run the same MACs and the same env
/// steps, mirroring the software contract that overlap is bit-identical
/// to lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoubleBufferedServing {
    /// Fleet size `N`.
    pub fleet: usize,
    /// Accelerator cycles to infer the whole fleet in one batch
    /// (lockstep selection).
    pub infer_full_cycles: u64,
    /// Accelerator cycles to infer buffer A (`⌊N/2⌋` rows).
    pub infer_a_cycles: u64,
    /// Accelerator cycles to infer buffer B (`⌈N/2⌉` rows).
    pub infer_b_cycles: u64,
    /// Host cycles to step one environment.
    pub host_cycles_per_env: u64,
    /// Barrier/staging cost of one phase boundary.
    pub barrier_cycles: u64,
}

impl DoubleBufferedServing {
    /// Builds the model for serving a `fleet` of environments with the
    /// actor given by `sizes`, a host cost of `host_cycles_per_env`
    /// cycles per environment step, and `barrier_cycles` per phase
    /// boundary.
    pub fn for_actor(
        cfg: &AccelConfig,
        sizes: &[usize],
        fleet: usize,
        precision: Precision,
        host_cycles_per_env: u64,
        barrier_cycles: u64,
    ) -> Self {
        let h = fleet / 2;
        let infer = |n: usize| {
            if n == 0 {
                0
            } else {
                BatchedInferenceSchedule::for_mlp(cfg, sizes, n, precision).cycles
            }
        };
        Self {
            fleet,
            infer_full_cycles: infer(fleet),
            infer_a_cycles: infer(h),
            infer_b_cycles: infer(fleet - h),
            host_cycles_per_env,
            barrier_cycles,
        }
    }

    /// Host cycles to step buffer A's environments.
    pub fn host_a_cycles(&self) -> u64 {
        (self.fleet / 2) as u64 * self.host_cycles_per_env
    }

    /// Host cycles to step buffer B's environments.
    pub fn host_b_cycles(&self) -> u64 {
        (self.fleet - self.fleet / 2) as u64 * self.host_cycles_per_env
    }

    /// Cycles of one lockstep fleet step: full-fleet inference, then
    /// the host steps every environment.
    pub fn lockstep_cycles(&self) -> u64 {
        self.infer_full_cycles + self.fleet as u64 * self.host_cycles_per_env
    }

    /// Cycles of one overlapped fleet step (the three-phase schedule
    /// plus its two phase barriers).
    pub fn overlapped_cycles(&self) -> u64 {
        self.infer_a_cycles
            + self.infer_b_cycles.max(self.host_a_cycles())
            + self.host_b_cycles()
            + 2 * self.barrier_cycles
    }

    /// Cycles phase 2 hides: the smaller of B's inference and A's host
    /// stepping runs entirely in the other's shadow.
    pub fn hidden_cycles(&self) -> u64 {
        self.infer_b_cycles.min(self.host_a_cycles())
    }

    /// Throughput ratio of overlapped over lockstep serving (> 1 when
    /// the hidden work outweighs the split-inference and barrier
    /// costs; ≤ 1 for fleets too small to split).
    pub fn overlap_speedup(&self) -> f64 {
        self.lockstep_cycles() as f64 / self.overlapped_cycles() as f64
    }

    /// Fraction of phase 2 during which host and accelerator are both
    /// busy (the Fig. 9 overlap quality metric; 1.0 = perfectly
    /// balanced buffers).
    pub fn overlap_fraction(&self) -> f64 {
        let phase2 = self.infer_b_cycles.max(self.host_a_cycles());
        if phase2 == 0 {
            return 0.0;
        }
        self.hidden_cycles() as f64 / phase2 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::AccelConfig;

    const ACTOR: [usize; 4] = [17, 400, 300, 6];
    const CRITIC: [usize; 4] = [23, 400, 300, 1];

    #[test]
    fn inference_uses_intra_layer_parallelism() {
        let cfg1 = AccelConfig {
            n_cores: 1,
            ..AccelConfig::default()
        };
        let cfg2 = AccelConfig::default(); // 2 cores
        let s1 = InferenceSchedule::for_mlp(&cfg1, &ACTOR, Precision::Full32);
        let s2 = InferenceSchedule::for_mlp(&cfg2, &ACTOR, Precision::Full32);
        assert!(s1.cycles > s2.cycles, "more cores must speed up one vector");
        // Speedup bounded by N.
        assert!(s1.cycles as f64 / s2.cycles as f64 <= 2.0 + 1e-9);
        assert_eq!(s1.macs, 17 * 400 + 400 * 300 + 300 * 6);
    }

    #[test]
    fn training_ips_is_flat_across_batch_sizes() {
        // The paper's Fig. 10a: accelerator IPS stays ≈ constant because
        // intra-batch parallelism keeps cores busy at any batch size.
        let cfg = AccelConfig::default();
        let ips: Vec<f64> = [64, 128, 256, 512]
            .iter()
            .map(|&b| {
                TrainingSchedule::for_ddpg(&cfg, &ACTOR, &CRITIC, b, Precision::Half16).ips(&cfg)
            })
            .collect();
        let min = ips.iter().cloned().fold(f64::MAX, f64::min);
        let max = ips.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.10, "accelerator IPS should be flat: {ips:?}");
    }

    #[test]
    fn half_precision_speeds_up_training() {
        let cfg = AccelConfig::default();
        let full = TrainingSchedule::for_ddpg(&cfg, &ACTOR, &CRITIC, 256, Precision::Full32);
        let half = TrainingSchedule::for_ddpg(&cfg, &ACTOR, &CRITIC, 256, Precision::Half16);
        let speedup = half.ips(&cfg) / full.ips(&cfg);
        // Forward MACs double, error propagation does not: expect a
        // speedup between 1.2× and 2×, matching the paper's
        // 38.8k → 53.8k IPS (≈1.39×).
        assert!(
            (1.2..2.0).contains(&speedup),
            "half-precision speedup {speedup}"
        );
    }

    #[test]
    fn paper_scale_ips_and_utilization() {
        let cfg = AccelConfig::default();
        let sched = TrainingSchedule::for_ddpg(&cfg, &ACTOR, &CRITIC, 512, Precision::Half16);
        let ips = sched.ips(&cfg);
        // Fig. 10a reports 53 826.8 IPS; the structural model lands
        // within a few percent of it (see EXPERIMENTS.md).
        assert!(
            (48_000.0..60_000.0).contains(&ips),
            "accelerator IPS {ips} out of the paper's regime"
        );
        let util = sched.utilization();
        // Slot-level occupancy; the paper's 92.4% counts busy PEs rather
        // than busy MAC slots, so our figure reads lower (DESIGN.md §4).
        assert!(
            (0.5..=1.0).contains(&util),
            "utilization {util} out of range at batch 512"
        );
    }

    #[test]
    fn full_precision_matches_table2_peak_regime() {
        let cfg = AccelConfig::default();
        let sched = TrainingSchedule::for_ddpg(&cfg, &ACTOR, &CRITIC, 512, Precision::Full32);
        let ips = sched.ips(&cfg);
        // Table II lists 38 779.8 IPS peak at full precision; the model
        // lands within a few percent.
        assert!(
            (35_000.0..43_000.0).contains(&ips),
            "full-precision IPS {ips} out of regime"
        );
    }

    #[test]
    fn weight_update_cost_is_amortized() {
        let cfg = AccelConfig::default();
        let sched = TrainingSchedule::for_ddpg(&cfg, &ACTOR, &CRITIC, 512, Precision::Full32);
        // Adam touches each of the ≈259.5k parameters once, 16 lanes wide.
        assert_eq!(sched.weight_update_cycles, 259_507u64.div_ceil(16));
        assert!(sched.weight_update_cycles < sched.total_cycles() / 10);
    }

    #[test]
    fn batched_schedule_beats_per_sample_at_every_batch_size() {
        // The whole point of the batched kernels: same MAC work, less
        // staging — strictly higher IPS and occupancy at every batch.
        let cfg = AccelConfig::default();
        for precision in [Precision::Full32, Precision::Half16] {
            for batch in [32, 64, 128, 256, 512] {
                let per_sample =
                    TrainingSchedule::for_ddpg(&cfg, &ACTOR, &CRITIC, batch, precision);
                let batched =
                    TrainingSchedule::for_ddpg_batched(&cfg, &ACTOR, &CRITIC, batch, precision);
                assert!(
                    batched.ips(&cfg) > per_sample.ips(&cfg),
                    "batch {batch} {precision:?}: batched {} <= per-sample {}",
                    batched.ips(&cfg),
                    per_sample.ips(&cfg)
                );
                assert!(batched.utilization() > per_sample.utilization());
                assert!(
                    batched.utilization() <= 1.0,
                    "occupancy {} above 1",
                    batched.utilization()
                );
                // Identical arithmetic: the ideal-cycle denominators match.
                assert!((batched.ideal_cycles - per_sample.ideal_cycles).abs() < 1e-9);
                assert_eq!(
                    batched.weight_update_cycles,
                    per_sample.weight_update_cycles
                );
            }
        }
    }

    #[test]
    fn single_and_batched_inference_schedules_agree_at_batch_1() {
        // On a single core the two dataflows collapse to the same tile
        // walk: intra-layer parallelism has one lane to spread over and
        // intra-batch parallelism has one sample — identical cycles,
        // ideal cycles, and MACs.
        let one_core = AccelConfig {
            n_cores: 1,
            ..AccelConfig::default()
        };
        for precision in [Precision::Full32, Precision::Half16] {
            let single = InferenceSchedule::for_mlp(&one_core, &ACTOR, precision);
            let batched = BatchedInferenceSchedule::for_mlp(&one_core, &ACTOR, 1, precision);
            assert_eq!(single.cycles, batched.cycles, "{precision:?} cycles");
            assert!((single.ideal_cycles - batched.ideal_cycles).abs() < 1e-12);
            assert_eq!(single.macs, batched.macs);
        }
        // At multiple cores the MAC work and ideal cycles still agree,
        // and intra-layer parallelism is the better (never worse) way to
        // serve one lone vector — which is exactly why the serving
        // batcher wants real micro-batches.
        let cfg = AccelConfig::default();
        for precision in [Precision::Full32, Precision::Half16] {
            let single = InferenceSchedule::for_mlp(&cfg, &ACTOR, precision);
            let batched = BatchedInferenceSchedule::for_mlp(&cfg, &ACTOR, 1, precision);
            assert_eq!(single.macs, batched.macs);
            assert!((single.ideal_cycles - batched.ideal_cycles).abs() < 1e-12);
            assert!(single.cycles <= batched.cycles);
        }
    }

    #[test]
    fn batched_schedule_reaches_paper_utilization_regime() {
        // Fig. 10 / §VI-C: 92.4% PE utilization at large batch — the
        // batched dataflow gets into that regime.
        let cfg = AccelConfig::default();
        let sched =
            TrainingSchedule::for_ddpg_batched(&cfg, &ACTOR, &CRITIC, 512, Precision::Half16);
        let util = sched.utilization();
        assert!(
            (0.80..=1.0).contains(&util),
            "batched utilization {util} below the paper regime"
        );
    }

    #[test]
    fn lane_utilization_reports_shard_load_balance() {
        let cfg = AccelConfig::default();
        let sched =
            TrainingSchedule::for_ddpg_batched(&cfg, &ACTOR, &CRITIC, 64, Precision::Half16);
        // The paper's batch sizes divide evenly at 1/2/4/8 lanes: full
        // utilization, speedup == lanes.
        for lanes in [1, 2, 4, 8] {
            assert!((sched.lane_utilization(lanes) - 1.0).abs() < 1e-12);
            assert!((sched.lane_speedup(lanes) - lanes as f64).abs() < 1e-12);
        }
        // Ragged shards leave the barrier waiting on the longest lane.
        let ragged =
            TrainingSchedule::for_ddpg_batched(&cfg, &ACTOR, &CRITIC, 65, Precision::Half16);
        let u = ragged.lane_utilization(8);
        assert!((u - 65.0 / 72.0).abs() < 1e-12, "utilization {u}");
        assert!(ragged.lane_speedup(8) < 8.0);
        // More lanes than samples: extra lanes idle.
        let tiny = TrainingSchedule::for_ddpg_batched(&cfg, &ACTOR, &CRITIC, 3, Precision::Full32);
        assert!((tiny.lane_utilization(8) - 3.0 / 8.0).abs() < 1e-12);
        // Degenerate inputs: zero lanes clamp to one lane, and the
        // speedup/lanes identity holds everywhere.
        assert!((tiny.lane_utilization(0) - 1.0).abs() < 1e-12);
        assert!((tiny.lane_speedup(0) - 1.0).abs() < 1e-12);
        for lanes in [1usize, 3, 8] {
            assert!(
                (tiny.lane_utilization(lanes) * lanes as f64 - tiny.lane_speedup(lanes)).abs()
                    < 1e-12
            );
        }
        let inf = BatchedInferenceSchedule::for_mlp(&cfg, &ACTOR, 64, Precision::Full32);
        assert!((inf.lane_utilization(4) - 1.0).abs() < 1e-12);
        assert!((inf.lane_speedup(4) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn batched_inference_schedule_scales_with_cores_and_batch() {
        let cfg = AccelConfig::default();
        let one_core = AccelConfig {
            n_cores: 1,
            ..AccelConfig::default()
        };
        let b2 = BatchedInferenceSchedule::for_mlp(&cfg, &ACTOR, 64, Precision::Full32);
        let b1 = BatchedInferenceSchedule::for_mlp(&one_core, &ACTOR, 64, Precision::Full32);
        assert!(b2.cycles < b1.cycles, "two cores must be faster");
        assert_eq!(b2.macs, (17 * 400 + 400 * 300 + 300 * 6) * 64);
        assert!(b2.utilization() <= 1.0 && b2.utilization() > 0.0);

        // Per-inference amortization: a 64-batch is far cheaper per
        // sample than 64 single-vector inferences.
        let single = InferenceSchedule::for_mlp(&cfg, &ACTOR, Precision::Full32);
        assert!(b2.cycles < single.cycles * 64);
        assert!(b2.ips(&cfg) > 0.0 && b2.latency_s(&cfg) > 0.0);
    }

    #[test]
    fn fused_multi_network_schedule_saves_exactly_the_phase_overheads() {
        // The structural twin of the software fused scopes: identical
        // MAC work and ideal cycles (arithmetic unchanged), cycles
        // lower by exactly (active networks - 1) phase overheads per
        // layer step — and therefore strictly higher occupancy.
        let cfg = AccelConfig::default();
        for precision in [Precision::Full32, Precision::Half16] {
            for batch in [16usize, 64, 512] {
                let c1 = BatchedInferenceSchedule::for_mlp(&cfg, &CRITIC, batch, precision);
                let c2 = BatchedInferenceSchedule::for_mlp(&cfg, &CRITIC, batch, precision);
                let fused = BatchedInferenceSchedule::for_mlps_fused(
                    &cfg,
                    &[&CRITIC, &CRITIC],
                    batch,
                    precision,
                );
                assert_eq!(fused.macs, c1.macs + c2.macs, "MAC work is the sum");
                assert!((fused.ideal_cycles - (c1.ideal_cycles + c2.ideal_cycles)).abs() < 1e-9);
                let layers = CRITIC.len() - 1;
                let saved = layers as u64 * cfg.phase_overhead_cycles;
                assert_eq!(
                    fused.cycles,
                    c1.cycles + c2.cycles - saved,
                    "fusing twin critics saves one phase setup per layer step"
                );
                assert!(fused.utilization() > c1.utilization().min(c2.utilization()));
            }
        }

        // Unequal depths: the shallower network stops contributing
        // kernels, the deeper one still pays its overheads.
        let shallow: [usize; 3] = [23, 400, 1];
        let cfg = AccelConfig::default();
        let a = BatchedInferenceSchedule::for_mlp(&cfg, &CRITIC, 64, Precision::Full32);
        let b = BatchedInferenceSchedule::for_mlp(&cfg, &shallow, 64, Precision::Full32);
        let fused = BatchedInferenceSchedule::for_mlps_fused(
            &cfg,
            &[&CRITIC, &shallow],
            64,
            Precision::Full32,
        );
        assert_eq!(fused.macs, a.macs + b.macs);
        // Shared steps: min(layers) of them save one overhead each.
        let shared = (shallow.len() - 1) as u64;
        assert_eq!(
            fused.cycles,
            a.cycles + b.cycles - shared * cfg.phase_overhead_cycles
        );
        // Degenerate: a single network fused is the plain schedule.
        let solo =
            BatchedInferenceSchedule::for_mlps_fused(&cfg, &[&CRITIC], 64, Precision::Full32);
        assert_eq!(solo.cycles, a.cycles);
        assert_eq!(solo.macs, a.macs);
    }

    #[test]
    fn double_buffered_serving_hides_host_work_behind_inference() {
        let cfg = AccelConfig::default();
        // Host cost chosen near the half-fleet inference cost: the
        // overlap regime the schedule is built for.
        let infer_half = BatchedInferenceSchedule::for_mlp(&cfg, &ACTOR, 32, Precision::Full32);
        let host_per_env = infer_half.cycles / 32;
        let model =
            DoubleBufferedServing::for_actor(&cfg, &ACTOR, 64, Precision::Full32, host_per_env, 50);
        // Work conservation: phase cycles cover the same env steps.
        assert_eq!(
            model.host_a_cycles() + model.host_b_cycles(),
            64 * host_per_env
        );
        assert_eq!(model.fleet, 64);
        // The overlap hides ~the whole smaller side of phase 2...
        assert_eq!(
            model.hidden_cycles(),
            model.infer_b_cycles.min(model.host_a_cycles())
        );
        assert!(
            model.overlap_fraction() > 0.8,
            "balanced buffers overlap well"
        );
        // ...which beats lockstep serving despite split inference and
        // two barriers.
        assert!(
            model.overlap_speedup() > 1.2,
            "speedup {} with balanced host/accel work",
            model.overlap_speedup()
        );
        assert!(model.overlapped_cycles() < model.lockstep_cycles());

        // Host-free serving (host cost ~0): overlap cannot win — the
        // split inference and barriers are pure cost, exactly like the
        // software path on a saturated pool.
        let degenerate =
            DoubleBufferedServing::for_actor(&cfg, &ACTOR, 64, Precision::Full32, 0, 50);
        assert!(degenerate.overlap_speedup() <= 1.0);
        // A fleet of one cannot split: buffer A is empty, nothing hides.
        let solo =
            DoubleBufferedServing::for_actor(&cfg, &ACTOR, 1, Precision::Full32, host_per_env, 50);
        assert_eq!(solo.infer_a_cycles, 0);
        assert_eq!(solo.hidden_cycles(), 0);
        assert!(solo.overlap_speedup() <= 1.0);
    }

    #[test]
    fn fpga_time_scales_linearly_with_batch() {
        // Fig. 9a: accelerator time is linear in batch size.
        let cfg = AccelConfig::default();
        let t = |b: usize| {
            TrainingSchedule::for_ddpg(&cfg, &ACTOR, &CRITIC, b, Precision::Half16).latency_s(&cfg)
        };
        let ratio = t(512) / t(64);
        assert!((6.0..9.0).contains(&ratio), "512/64 time ratio {ratio} ≈ 8");
    }
}
