//! The hardware pseudo-random number generator (paper Fig. 2's "PRNG"
//! module), which "injects random noise to the final results of the
//! actor's inference to help action exploration".

use fixar_fixed::Fx32;

/// 32-bit xorshift linear-feedback generator — three shift/XOR stages,
/// exactly the class of PRNG an FPGA implements in a handful of LUTs.
/// Full period `2³² − 1` over nonzero states.
///
/// # Example
///
/// ```
/// use fixar_accel::Lfsr32;
///
/// let mut rng = Lfsr32::new(0xDEADBEEF);
/// let a = rng.next_u32();
/// let b = rng.next_u32();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr32 {
    state: u32,
}

impl Lfsr32 {
    /// Creates the generator; a zero seed (the xorshift fixed point) is
    /// remapped to a nonzero constant.
    pub fn new(seed: u32) -> Self {
        Self {
            state: if seed == 0 { 0x1234_5678 } else { seed },
        }
    }

    /// Next raw 32-bit state.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Uniform value in `[0, 1)` with 32 fraction bits.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        self.next_u32() as f64 / 4_294_967_296.0
    }
}

/// Irwin–Hall Gaussian generator: the sum of 12 uniform variates minus 6
/// approximates `N(0, 1)` — an adder tree in hardware, no transcendental
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrwinHallGaussian {
    lfsr: Lfsr32,
}

impl IrwinHallGaussian {
    /// Creates the generator from a seed.
    pub fn new(seed: u32) -> Self {
        Self {
            lfsr: Lfsr32::new(seed),
        }
    }

    /// One approximately standard-normal draw.
    #[inline]
    pub fn next_standard(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.lfsr.next_unit();
        }
        acc - 6.0
    }

    /// Exploration noise vector in the accelerator's fixed-point format,
    /// as injected after the actor's output layer.
    pub fn noise_vector(&mut self, dim: usize, sigma: f64) -> Vec<Fx32> {
        (0..dim)
            .map(|_| Fx32::from_f64(self.next_standard() * sigma))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut a = Lfsr32::new(0);
        // A true xorshift at state 0 would stay at 0 forever.
        assert_ne!(a.next_u32(), 0);
    }

    #[test]
    fn sequence_is_deterministic() {
        let mut a = Lfsr32::new(42);
        let mut b = Lfsr32::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn no_short_cycles_in_first_million() {
        let mut rng = Lfsr32::new(1);
        let first = rng.next_u32();
        for _ in 0..1_000_000 {
            assert_ne!(rng.next_u32(), 0, "xorshift never hits zero");
        }
        // Not back at the start within 1M draws (period is 2³²−1).
        let mut rng2 = Lfsr32::new(1);
        rng2.next_u32();
        let _ = first;
        assert_eq!(rng2.state, first);
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = Lfsr32::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn irwin_hall_moments_approximate_standard_normal() {
        let mut g = IrwinHallGaussian::new(3);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| g.next_standard()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
        // Bounded support: |sum of 12 uniforms − 6| ≤ 6.
        assert!(xs.iter().all(|x| x.abs() <= 6.0));
    }

    #[test]
    fn noise_vector_scales_with_sigma() {
        let mut g = IrwinHallGaussian::new(9);
        let v = g.noise_vector(1000, 0.1);
        assert_eq!(v.len(), 1000);
        let max = v.iter().map(|x| x.to_f64().abs()).fold(0.0, f64::max);
        assert!(max <= 0.6 + 1e-9, "max={max}"); // 6σ bound
        assert!(max > 0.05, "noise should not be degenerate");
    }
}
