//! End-to-end tests of Algorithm 1's schedule: calibration → freeze →
//! quantized re-training, through the full trainer stack.

use fixar::{EnvKind, FixarSystem};
use fixar_repro::prelude::*;

#[test]
fn dynamic_mode_switches_and_keeps_training() {
    let cfg = DdpgConfig::small_test().with_qat(150, 16);
    let report = FixarSystem::new(EnvKind::Pendulum, PrecisionMode::DynamicFixed)
        .with_config(cfg)
        .run(400, 100, 1)
        .unwrap();
    assert_eq!(report.training.qat_switch_step, Some(150));
    assert_eq!(report.training.curve.len(), 4);
    // Evaluations after the switch are still finite — training survived
    // quantization.
    for p in &report.training.curve {
        assert!(p.avg_reward.is_finite(), "step {}: NaN reward", p.step);
    }
}

#[test]
fn quantized_actor_stays_close_to_calibrated_actor() {
    // Build an agent, calibrate on a real observation distribution,
    // freeze, and measure the quantization perturbation on actions.
    let cfg = DdpgConfig::small_test().with_qat(50, 16);
    let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
    let mut env = fixar_env::Pendulum::new(4);
    let mut obs = env.reset();
    let mut pre_freeze_actions = Vec::new();
    let mut probe_states = Vec::new();
    let mut transitions = Vec::new();
    for step in 0..60 {
        let a = agent.act(&obs).unwrap();
        if step >= 50 {
            probe_states.push(obs.clone());
            pre_freeze_actions.push(a.clone());
        }
        let res = env.step(&a);
        transitions.push(Transition {
            state: obs.clone(),
            action: a,
            reward: res.reward,
            next_state: res.observation.clone(),
            terminal: res.terminated,
        });
        obs = res.observation;
    }
    // Calibrate the critic and target runtimes too (the real loop trains
    // every step).
    let refs: Vec<&Transition> = transitions.iter().take(16).collect();
    agent.train_batch(&refs).unwrap();
    agent.on_timestep(100).unwrap();
    assert!(agent.qat_frozen());
    for (state, before) in probe_states.iter().zip(&pre_freeze_actions) {
        let after = agent.act(state).unwrap();
        for (b, a) in before.iter().zip(&after) {
            assert!(
                (b - a).abs() < 0.25,
                "16-bit quantization changed the action too much: {b} -> {a}"
            );
        }
    }
}

#[test]
fn fixed16_from_scratch_stagnates_while_fixed32_moves() {
    // The Fig. 7 negative result at the system level: after identical
    // training protocols, the Fx16 agent's parameters are unchanged
    // while the Fx32 agent's have moved.
    fn run<S: Scalar>() -> (Vec<f64>, Vec<f64>) {
        let cfg = DdpgConfig::small_test();
        let mut trainer = Trainer::<S>::new(
            Box::new(fixar_env::Pendulum::new(1)),
            Box::new(fixar_env::Pendulum::new(2)),
            cfg,
        )
        .unwrap();
        let before: Vec<f64> = trainer.agent().actor().weight(0).as_slice()[..8]
            .iter()
            .map(|v| v.to_f64())
            .collect();
        trainer.run(300, 300, 1).unwrap();
        let after: Vec<f64> = trainer.agent().actor().weight(0).as_slice()[..8]
            .iter()
            .map(|v| v.to_f64())
            .collect();
        (before, after)
    }
    let (b32, a32) = run::<Fx32>();
    let moved32 = b32.iter().zip(&a32).any(|(b, a)| b != a);
    assert!(moved32, "fixed32 training should update weights");

    let (b16, a16) = run::<Fx16>();
    assert_eq!(b16, a16, "fixed16 training must stagnate at lr=1e-4");
}

#[test]
fn qat_switch_shrinks_simulated_timestep_in_cosim() {
    let cfg = DdpgConfig::small_test().with_qat(100, 16);
    let mut cosim = FixarCosim::new(
        Box::new(fixar_env::Pendulum::new(1)),
        Box::new(fixar_env::Pendulum::new(2)),
        cfg,
    )
    .unwrap();
    let report = cosim.run(200, 50, 1).unwrap();
    assert!(report.training.qat_switch_step.is_some());
    let t_half = report.final_breakdown.total_s();
    // Rebuild the full-precision breakdown for the same batch for
    // comparison.
    let model = FixarPlatformModel::for_benchmark(3, 1).unwrap();
    let t_full = model
        .breakdown(report.final_breakdown.batch, Precision::Full32)
        .unwrap()
        .total_s();
    assert!(
        t_half < t_full,
        "post-QAT timestep {t_half} should beat full-precision {t_full}"
    );
}

#[test]
fn per_layer_quantizers_cover_live_activation_ranges() {
    // After calibration on real data, every live activation point has a
    // quantizer whose range covers what the network actually produces.
    let cfg = DdpgConfig::small_test().with_qat(10, 16);
    let mut agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
    let mut env = fixar_env::Pendulum::new(7);
    let mut obs = env.reset();
    for _ in 0..20 {
        let a = agent.act(&obs).unwrap();
        obs = env.step(&a).observation;
    }
    agent.on_timestep(10).unwrap();
    // The actor output is tanh-bounded: its quantizer (if present) must
    // have a step below 1e-3 for 16 bits over a ±1-ish range.
    // We can't reach runtimes directly from here; assert behaviourally:
    let action_a = agent.act(&obs).unwrap();
    let action_b = agent.act(&obs).unwrap();
    assert_eq!(action_a, action_b, "quantized inference is deterministic");
}
