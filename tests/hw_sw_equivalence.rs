//! Cross-crate equivalence: the accelerator's structural PE/dataflow
//! execution must agree with the `fixar-nn` software reference — the
//! contract that makes the platform co-simulation valid.

use fixar_repro::prelude::*;

fn random_pair(sizes_a: Vec<usize>, sizes_c: Vec<usize>, seed: u64) -> (Mlp<Fx32>, Mlp<Fx32>) {
    let actor = Mlp::new_random(
        &MlpConfig::new(sizes_a).with_output_activation(Activation::Tanh),
        seed,
    )
    .unwrap();
    let critic = Mlp::new_random(&MlpConfig::new(sizes_c), seed + 1).unwrap();
    (actor, critic)
}

#[test]
fn structural_inference_bit_exact_across_topologies() {
    for (sizes_a, sizes_c, seed) in [
        (vec![3, 8, 2], vec![5, 8, 1], 1u64),
        (vec![5, 24, 18, 2], vec![7, 24, 18, 1], 2),
        (vec![11, 64, 48, 3], vec![14, 64, 48, 1], 3),
        (vec![8, 33, 17, 2], vec![10, 33, 17, 1], 4), // non-multiple-of-16 widths
    ] {
        let (actor, critic) = random_pair(sizes_a, sizes_c, seed);
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&actor, &critic).unwrap();
        for trial in 0..5 {
            let state: Vec<Fx32> = (0..actor.input_dim())
                .map(|i| Fx32::from_f64(((i + trial) as f64 * 0.37).sin()))
                .collect();
            let (hw, _) = accel.actor_inference(&state, Precision::Full32).unwrap();
            let sw = actor.forward(&state).unwrap();
            assert_eq!(hw, sw, "seed {seed} trial {trial}: actor mismatch");

            let sa: Vec<Fx32> = (0..critic.input_dim())
                .map(|i| Fx32::from_f64(((i * 3 + trial) as f64 * 0.21).cos()))
                .collect();
            let (hw_q, _) = accel.critic_inference(&sa, Precision::Full32).unwrap();
            let sw_q = critic.forward(&sa).unwrap();
            assert_eq!(hw_q, sw_q, "seed {seed} trial {trial}: critic mismatch");
        }
    }
}

#[test]
fn paper_size_networks_bit_exact_and_on_chip() {
    let (actor, critic) = random_pair(vec![17, 400, 300, 6], vec![23, 400, 300, 1], 9);
    let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
    accel.load_ddpg(&actor, &critic).unwrap();
    let mb = accel.model_bytes() as f64 / 1e6;
    assert!((1.0..1.15).contains(&mb), "on-chip image {mb} MB");

    let state: Vec<Fx32> = (0..17)
        .map(|i| Fx32::from_f64(i as f64 * 0.1 - 0.8))
        .collect();
    let (hw, cycles) = accel.actor_inference(&state, Precision::Full32).unwrap();
    assert_eq!(hw, actor.forward(&state).unwrap());
    // Intra-layer parallelism: one inference in the hundreds of cycles.
    assert!(cycles < 1_000, "inference took {cycles} cycles");
}

#[test]
fn half_precision_deviation_bounded_by_activation_quantization() {
    let (actor, critic) = random_pair(vec![9, 40, 30, 4], vec![13, 40, 30, 1], 21);
    let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
    accel.load_ddpg(&actor, &critic).unwrap();
    for trial in 0..10 {
        let state: Vec<Fx32> = (0..9)
            .map(|i| Fx32::from_f64(((i * 7 + trial) as f64 * 0.13).sin() * 2.0))
            .collect();
        let (full, _) = accel.actor_inference(&state, Precision::Full32).unwrap();
        let (half, _) = accel.actor_inference(&state, Precision::Half16).unwrap();
        for (f, h) in full.iter().zip(&half) {
            assert!(
                (f.to_f64() - h.to_f64()).abs() < 0.1,
                "trial {trial}: full {f} vs half {h}"
            );
        }
    }
}

#[test]
fn weight_memory_image_roundtrips_the_model() {
    let (actor, critic) = random_pair(vec![6, 20, 3], vec![9, 20, 1], 33);
    let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
    accel.load_ddpg(&actor, &critic).unwrap();
    // The serialized image is 512-bit aligned and contains the weights.
    let bytes = accel.weight_memory().as_bytes();
    assert_eq!(bytes.len() % 64, 0);
    assert_eq!(bytes.len(), accel.model_bytes());
    assert!(bytes.len() >= (actor.param_count() + critic.param_count()) * 4);
}

#[test]
fn batched_structural_inference_bit_exact_vs_forward_batch() {
    // The batched compute path end to end: the accelerator's batched
    // structural execution must agree bit-for-bit with
    // `Mlp::forward_batch`, which in turn is bit-exact with the
    // per-sample kernels — one arithmetic answer across all three paths.
    use fixar_tensor::Matrix;
    for (sizes_a, sizes_c, seed, batch) in [
        (vec![3, 8, 2], vec![5, 8, 1], 41u64, 4usize),
        (vec![5, 24, 18, 2], vec![7, 24, 18, 1], 42, 9),
        (vec![8, 33, 17, 2], vec![10, 33, 17, 1], 43, 16), // ragged widths
    ] {
        let (actor, critic) = random_pair(sizes_a, sizes_c, seed);
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&actor, &critic).unwrap();

        let states = Matrix::<f64>::from_fn(batch, actor.input_dim(), |b, i| {
            ((b * 11 + i * 5) as f64 * 0.23).sin()
        })
        .cast::<Fx32>();
        let (hw, cycles) = accel
            .actor_inference_batch(&states, Precision::Full32)
            .unwrap();
        let sw = actor.forward_batch(&states).unwrap();
        assert_eq!(hw, sw, "seed {seed}: batched actor mismatch");
        assert!(cycles > 0);

        let sa = Matrix::<f64>::from_fn(batch, critic.input_dim(), |b, i| {
            ((b * 7 + i * 3) as f64 * 0.31).cos()
        })
        .cast::<Fx32>();
        let (hw_q, _) = accel
            .critic_inference_batch(&sa, Precision::Full32)
            .unwrap();
        let sw_q = critic.forward_batch(&sa).unwrap();
        assert_eq!(hw_q, sw_q, "seed {seed}: batched critic mismatch");

        // And each row equals the single-vector structural path.
        for b in 0..batch {
            let (row_hw, _) = accel
                .actor_inference(states.row(b), Precision::Full32)
                .unwrap();
            assert_eq!(hw.row(b), row_hw.as_slice(), "row {b}");
        }
    }
}

#[test]
fn batched_cycle_model_outperforms_per_sample_model() {
    // The batched kernels' timing twin: same arithmetic, higher
    // occupancy, more IPS — on the loaded paper-size pair.
    let (actor, critic) = random_pair(vec![17, 400, 300, 6], vec![23, 400, 300, 1], 77);
    let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
    accel.load_ddpg(&actor, &critic).unwrap();
    for precision in [Precision::Full32, Precision::Half16] {
        for batch in [64usize, 128, 512] {
            let per_sample = accel.train_timestep_cycles(batch, precision).unwrap();
            let batched = accel
                .train_timestep_cycles_batched(batch, precision)
                .unwrap();
            assert!(
                batched.ips > per_sample.ips,
                "batch {batch} {precision:?}: {} <= {}",
                batched.ips,
                per_sample.ips
            );
            assert!(batched.utilization > per_sample.utilization);
            assert_eq!(
                batched.total,
                batched.forward + batched.backward + batched.weight_update + batched.inference
            );
        }
    }
    assert!(accel
        .train_timestep_cycles_batched(0, Precision::Full32)
        .is_err());
}

#[test]
fn fixed_point_training_matches_across_kernel_paths() {
    // Run the same gradient step through fixar-nn twice (the accelerator
    // kernel contract says there is exactly one arithmetic answer).
    let cfg = MlpConfig::new(vec![4, 12, 2]).with_output_activation(Activation::Tanh);
    let mut a = Mlp::<Fx32>::new_random(&cfg, 5).unwrap();
    let mut b = a.clone();
    let x: Vec<Fx32> = vec![0.1, -0.2, 0.3, -0.4]
        .into_iter()
        .map(Fx32::from_f64)
        .collect();
    let dl: Vec<Fx32> = vec![Fx32::from_f64(0.5), Fx32::from_f64(-0.25)];

    for net in [&mut a, &mut b] {
        let trace = net.forward_trace(&x).unwrap();
        let mut grads = MlpGrads::zeros_like(net);
        net.backward(&trace, &dl, &mut grads).unwrap();
        let mut opt = Adam::new(net, AdamConfig::default());
        opt.step(net, &grads).unwrap();
    }
    assert_eq!(a, b, "fixed-point training must be fully deterministic");
}

use fixar_nn::MlpGrads;
