//! Fleet-equivalence suite: the contracts that make vectorized
//! multi-env serving safe to use as the rollout hot path.
//!
//! Three pillars, mirroring `tests/workspace_props.rs`:
//!
//! 1. **Fleet-of-one ≡ scalar** — a `VecTrainer` with one env
//!    reproduces the scalar `Trainer::run` transition-for-transition,
//!    down to raw `Fx32` weights and replay contents, with and without
//!    QAT.
//! 2. **Slot independence** — with frozen agent weights, any slot's
//!    trajectory in an N-env fleet is bit-identical to a solo rollout
//!    of the same env seed and action stream.
//! 3. **Worker invariance** — fleet runs (replay order included) are
//!    bit-identical across pool worker counts, because batched kernels
//!    are bit-exact at every count and replay insertion is env-ordered
//!    on the calling thread.
//!
//! Plus the accelerator twin: `actor_inference_batch` matches the
//! software batched forward on fleet observations, and the batched
//! schedule's utilization grows with fleet size.

use fixar_accel::BatchedInferenceSchedule;
use fixar_env::{fleet_env_seed, EnvKind, EnvPool};
use fixar_pool::Parallelism;
use fixar_repro::prelude::*;
use fixar_rl::{action_stream_seed, ExplorationNoise, GaussianNoise, VecTrainer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scalar_trainer(cfg: DdpgConfig) -> Trainer<Fx32> {
    Trainer::new(
        EnvKind::Pendulum.make(cfg.seed),
        EnvKind::Pendulum.make(cfg.seed.wrapping_add(1)),
        cfg,
    )
    .unwrap()
}

fn fleet_trainer(n: usize, cfg: DdpgConfig) -> VecTrainer<Fx32> {
    VecTrainer::new(
        EnvPool::from_kind(EnvKind::Pendulum, n, cfg.seed),
        EnvKind::Pendulum.make(cfg.seed.wrapping_add(1)),
        cfg,
    )
    .unwrap()
}

fn assert_agents_bit_identical(a: &Ddpg<Fx32>, b: &Ddpg<Fx32>, what: &str) {
    assert_eq!(a.actor(), b.actor(), "{what}: actor weights");
    assert_eq!(a.critic(), b.critic(), "{what}: critic weights");
    assert_eq!(a.train_steps(), b.train_steps(), "{what}: train steps");
}

/// Pillar 1, plain Fx32: the headline acceptance criterion. Covers
/// warmup (uniform exploration), the noisy policy phase, training
/// updates, episode boundaries, and evaluation points.
#[test]
fn fleet_of_one_reproduces_scalar_trainer_bit_for_bit() {
    for seed in [0u64, 13] {
        let cfg = DdpgConfig::small_test().with_seed(seed);
        let mut scalar = scalar_trainer(cfg.clone());
        let mut fleet = fleet_trainer(1, cfg.clone());
        // Past warmup (64) so minibatch training runs; across an
        // episode boundary (Pendulum truncates at 200).
        let a = scalar.run(230, 50, 2).unwrap();
        let b = fleet.run(230, 50, 2).unwrap();
        assert_eq!(a, b, "seed {seed}: training reports");
        assert_agents_bit_identical(scalar.agent(), fleet.agent(), "seed");
        assert_eq!(
            scalar.replay().transitions(),
            fleet.replay().transitions(),
            "seed {seed}: replay contents"
        );
        // Consecutive runs stay locked (persistent rng streams).
        let a2 = scalar.run(40, 40, 1).unwrap();
        let b2 = fleet.run(40, 40, 1).unwrap();
        assert_eq!(a2, b2, "seed {seed}: second run");
    }
}

/// Pillar 1 under the QAT schedule: calibration, the freeze switch, and
/// quantized inference/training all agree between the two drivers.
#[test]
fn fleet_of_one_matches_scalar_under_qat() {
    let cfg = DdpgConfig::small_test().with_seed(5).with_qat(80, 16);
    let mut scalar = scalar_trainer(cfg.clone());
    let mut fleet = fleet_trainer(1, cfg.clone());
    let a = scalar.run(160, 80, 1).unwrap();
    let b = fleet.run(160, 80, 1).unwrap();
    assert_eq!(a.qat_switch_step, Some(80), "schedule must fire");
    assert_eq!(a, b, "QAT training reports");
    assert!(scalar.agent().qat_frozen() && fleet.agent().qat_frozen());
    assert_agents_bit_identical(scalar.agent(), fleet.agent(), "QAT");
    assert_eq!(scalar.replay().transitions(), fleet.replay().transitions());
}

/// The QAT delay counts fleet steps like every other cadence, so a
/// config reaches the same training phase at any fleet size: the
/// switch fires at the same per-env step in a 4-env fleet as in the
/// fleet of one, and the quantizers calibrate on post-warmup on-policy
/// activations in both.
#[test]
fn qat_delay_is_counted_in_fleet_steps_at_any_fleet_size() {
    let cfg = DdpgConfig::small_test().with_seed(5).with_qat(80, 16);
    for n in [1usize, 4] {
        let mut fleet = fleet_trainer(n, cfg.clone());
        let report = fleet.run(160, 160, 1).unwrap();
        // Warmup is 64 fleet steps; the delay lands at fleet step 80 in
        // the on-policy phase regardless of n (reported in env steps).
        assert_eq!(
            report.qat_switch_step,
            Some(80 * n as u64),
            "fleet {n}: switch step"
        );
        assert!(fleet.agent().qat_frozen(), "fleet {n}: frozen");
    }
}

/// Pillar 2: freeze the agent (no training possible: batch_size larger
/// than every transition the run can produce) and check each fleet
/// slot's replayed trajectory against a manual solo rollout driven by
/// the same env seed and per-slot action stream.
#[test]
fn each_slot_matches_a_solo_rollout_while_weights_are_frozen() {
    let n = 4;
    let fleet_steps = 120u64;
    let mut cfg = DdpgConfig::small_test().with_seed(9);
    cfg.warmup_steps = 20; // exercise both the uniform and noisy phases
    cfg.batch_size = 10_000; // sampling always underflows -> no updates
    let mut fleet = fleet_trainer(n, cfg.clone());
    fleet.run(fleet_steps, fleet_steps, 1).unwrap();
    assert_eq!(fleet.agent().train_steps(), 0, "weights must stay frozen");

    for slot in 0..n {
        // Rebuild slot `slot` by hand: same env seed, same action
        // stream, per-sample act() instead of the batched pass.
        let mut agent = fleet.agent().clone();
        let mut env = EnvKind::Pendulum.make(fleet_env_seed(cfg.seed, slot));
        let mut rng = StdRng::seed_from_u64(action_stream_seed(cfg.seed, slot));
        let mut noise = GaussianNoise::new(1, cfg.exploration_sigma);
        let mut obs = env.reset();
        for k in 1..=fleet_steps {
            let mut action = agent.act(&obs).unwrap();
            if k <= cfg.warmup_steps {
                for a in action.iter_mut() {
                    *a = rng.gen_range(-1.0..1.0);
                }
            } else {
                for (a, ni) in action.iter_mut().zip(noise.sample(&mut rng)) {
                    *a = (*a + ni).clamp(-1.0, 1.0);
                }
            }
            let res = env.step(&action);
            let t = fleet.replay().transition((k as usize - 1) * n + slot);
            assert_eq!(t.state, obs, "slot {slot} step {k}: state");
            assert_eq!(t.action, action, "slot {slot} step {k}: action");
            assert_eq!(t.reward, res.reward, "slot {slot} step {k}: reward");
            assert_eq!(
                t.next_state, res.observation,
                "slot {slot} step {k}: next state"
            );
            assert_eq!(t.terminal, res.terminated, "slot {slot} step {k}");
            if res.done() {
                obs = env.reset();
                noise.reset();
            } else {
                obs = res.observation;
            }
        }
    }
}

/// Pillar 3 (acceptance criterion): whole fleet runs — weights, replay
/// contents in order, reward curves — are bit-identical across worker
/// counts {1, 2, 4}.
#[test]
fn fleet_runs_bit_identical_across_worker_counts() {
    let cfg = DdpgConfig::small_test().with_seed(3);
    let run = |workers: usize| {
        let mut t = fleet_trainer(4, cfg.clone());
        t.agent_mut()
            .set_parallelism(Parallelism::with_workers(workers));
        let report = t.run(60, 60, 1).unwrap();
        (report, t)
    };
    let (report1, t1) = run(1);
    for workers in [2usize, 4] {
        let (report, t) = run(workers);
        assert_eq!(report1, report, "workers {workers}: reports");
        assert_agents_bit_identical(t1.agent(), t.agent(), "workers");
        assert_eq!(
            t1.replay().transitions(),
            t.replay().transitions(),
            "workers {workers}: replay insertion order/content"
        );
    }
}

/// The replay-order satellite at the workspace level: the first fleet
/// step's N transitions sit at indices 0..N in ascending env order
/// (states equal to the distinct per-slot reset observations), at every
/// worker count.
#[test]
fn replay_rows_are_env_major_ascending_at_every_worker_count() {
    let n = 3;
    let cfg = DdpgConfig::small_test().with_seed(7);
    let mut expected = EnvPool::from_kind(EnvKind::Pendulum, n, cfg.seed);
    let first_obs = expected.reset_all().clone();
    for workers in [1usize, 2, 4] {
        let mut t = fleet_trainer(n, cfg.clone());
        t.agent_mut()
            .set_parallelism(Parallelism::with_workers(workers));
        t.run(5, 5, 1).unwrap();
        let replay = t.replay().transitions();
        assert_eq!(replay.len(), 5 * n);
        for (slot, tr) in replay.iter().take(n).enumerate() {
            assert_eq!(
                tr.state.as_slice(),
                first_obs.row(slot),
                "workers {workers}, slot {slot}: first fleet step out of order"
            );
        }
    }
}

/// The accelerator twin: fleet observations through
/// `actor_inference_batch` equal the software batched forward (and so,
/// by the nn contract, the per-sample path each slot would have taken),
/// while the batched schedule's occupancy grows with fleet size.
#[test]
fn accelerator_serves_fleet_observations_bit_exactly() {
    let cfg = DdpgConfig::small_test().with_seed(11);
    let agent = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
    let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
    accel.load_ddpg(agent.actor(), agent.critic()).unwrap();

    let mut last_util = 0.0;
    for fleet_size in [1usize, 4, 16] {
        let mut pool = EnvPool::from_kind(EnvKind::Pendulum, fleet_size, 21);
        let states = pool.reset_all().cast::<Fx32>();
        let (hw, cycles) = accel
            .actor_inference_batch(&states, Precision::Full32)
            .unwrap();
        let sw = agent.actor().forward_batch(&states).unwrap();
        assert_eq!(hw, sw, "fleet {fleet_size}: structural twin diverged");

        let sched = BatchedInferenceSchedule::for_mlp(
            &AccelConfig::default(),
            &[3, 16, 12, 1],
            fleet_size,
            Precision::Full32,
        );
        assert_eq!(sched.cycles, cycles, "fleet {fleet_size}: cycle model");
        let util = sched.utilization();
        assert!(
            util > last_util,
            "fleet {fleet_size}: batching must raise PE occupancy ({util} <= {last_util})"
        );
        last_util = util;
    }
}

/// The paper-shape utilization check: at the HalfCheetah actor
/// (17-400-300-6), serving a 64-env fleet through the batched schedule
/// reaches the ≥80% utilization regime the paper reports for batched
/// operation, where one env at a time cannot.
#[test]
fn paper_actor_fleet_serving_reaches_high_utilization() {
    let cfg = AccelConfig::default();
    let actor = [17usize, 400, 300, 6];
    let solo = BatchedInferenceSchedule::for_mlp(&cfg, &actor, 1, Precision::Full32);
    let fleet = BatchedInferenceSchedule::for_mlp(&cfg, &actor, 64, Precision::Full32);
    assert!(
        fleet.utilization() >= 0.8,
        "64-env fleet utilization {}",
        fleet.utilization()
    );
    assert!(fleet.utilization() > solo.utilization());
    // Amortization shows up as inferences/sec too (cores saturate at
    // >2x, pipeline-fill amortization pushes it strictly past that).
    assert!(fleet.ips(&cfg) > 2.0 * solo.ips(&cfg));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized pillar 1+3: for arbitrary seeds and small fleets, a
    /// short fleet run is deterministic per seed and invariant to the
    /// worker count, and fleet size 1 stays locked to the scalar
    /// trainer.
    #[test]
    fn fleet_runs_deterministic_and_worker_invariant(
        seed in 0u64..200,
        n in 1usize..5,
        workers in 2usize..5,
    ) {
        let cfg = DdpgConfig::small_test().with_seed(seed);
        let mut a = fleet_trainer(n, cfg.clone());
        let mut b = fleet_trainer(n, cfg.clone());
        b.agent_mut().set_parallelism(Parallelism::with_workers(workers));
        // Past warmup so training updates run in both.
        let ra = a.run(70, 70, 1).unwrap();
        let rb = b.run(70, 70, 1).unwrap();
        prop_assert_eq!(&ra, &rb);
        prop_assert_eq!(a.agent().actor(), b.agent().actor());
        prop_assert_eq!(a.replay().transitions(), b.replay().transitions());
        if n == 1 {
            let mut s = scalar_trainer(cfg.clone());
            let rs = s.run(70, 70, 1).unwrap();
            prop_assert_eq!(&rs, &ra);
            prop_assert_eq!(s.agent().actor(), a.agent().actor());
        }
    }
}
