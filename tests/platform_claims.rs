//! The paper's quantitative claims, checked against the integrated
//! models (the per-figure details live in `crates/bench`).

use fixar_accel::comparison;
use fixar_repro::prelude::*;

#[test]
fn headline_abstract_numbers() {
    let model = FixarPlatformModel::for_benchmark(17, 6).unwrap();
    let gpu = CpuGpuPlatformModel::for_benchmark();

    // 25 293.3 IPS platform throughput…
    let platform_ips = model.ips(512, Precision::Half16).unwrap();
    assert!(
        (platform_ips / 25_293.3 - 1.0).abs() < 0.1,
        "platform IPS {platform_ips}"
    );
    // …2.7× the CPU-GPU platform…
    let speedup = platform_ips / gpu.ips(512);
    assert!((2.2..3.2).contains(&speedup), "platform speedup {speedup}");
    // …53 826.8 IPS accelerator throughput…
    let accel_ips = model.accelerator_ips(512, Precision::Half16);
    assert!(
        (accel_ips / 53_826.8 - 1.0).abs() < 0.1,
        "accelerator IPS {accel_ips}"
    );
    // …2638.0 IPS/W at the measured 20.4 W…
    let eff = PowerModel::ips_per_watt(accel_ips, 20.4);
    assert!((eff / 2_638.0 - 1.0).abs() < 0.1, "efficiency {eff}");
    // …15.4× more efficient than the GPU.
    let gpu_eff = PowerModel::default().gpu_ips_per_watt(gpu.accelerator_ips(512));
    assert!(
        (13.0..18.0).contains(&(eff / gpu_eff)),
        "efficiency gap {}",
        eff / gpu_eff
    );
}

#[test]
fn figure8_speedup_band_across_all_benchmarks() {
    let gpu = CpuGpuPlatformModel::for_benchmark();
    let mut min_ratio = f64::MAX;
    let mut max_ratio: f64 = 0.0;
    for (obs, act) in [(17, 6), (11, 3), (8, 2)] {
        let model = FixarPlatformModel::for_benchmark(obs, act).unwrap();
        for batch in [64, 128, 256, 512] {
            let ratio = model.ips(batch, Precision::Half16).unwrap() / gpu.ips(batch);
            min_ratio = min_ratio.min(ratio);
            max_ratio = max_ratio.max(ratio);
        }
    }
    // Paper: "1.8–4.8 times better". Our host model uses one constant
    // environment time for all benchmarks, so the modelled spread comes
    // only from the batch sweep and is narrower than the paper's.
    assert!(min_ratio > 1.5, "min speedup {min_ratio}");
    assert!(max_ratio < 5.5, "max speedup {max_ratio}");
    assert!(max_ratio > min_ratio * 1.1, "sweep should show a spread");
}

#[test]
fn figure10_fixar_flat_gpu_ramping() {
    let model = FixarPlatformModel::for_benchmark(17, 6).unwrap();
    let gpu = CpuGpuPlatformModel::for_benchmark();
    let f: Vec<f64> = [64, 128, 256, 512]
        .iter()
        .map(|&b| model.accelerator_ips(b, Precision::Half16))
        .collect();
    let g: Vec<f64> = [64, 128, 256, 512]
        .iter()
        .map(|&b| gpu.accelerator_ips(b))
        .collect();
    // FIXAR: flat within 10%.
    let fmax = f.iter().cloned().fold(0.0, f64::max);
    let fmin = f.iter().cloned().fold(f64::MAX, f64::min);
    assert!(fmax / fmin < 1.10, "FIXAR accel IPS not flat: {f:?}");
    // GPU: strictly increasing and more than 2× from 64 to 512.
    assert!(
        g.windows(2).all(|w| w[1] > w[0]),
        "GPU IPS not rising: {g:?}"
    );
    assert!(g[3] / g[0] > 2.0, "GPU ramp too shallow: {g:?}");
}

#[test]
fn table1_design_fits_u50() {
    let model = ResourceModel::new(AccelConfig::default());
    assert!(model.fits(&U50_BUDGET));
    let (lut, ff, bram, uram, dsp) = model.utilization(&U50_BUDGET);
    // Paper utilization: 58.4% LUT, 23.5% FF, 57.6% BRAM, 20% URAM,
    // 38.8% DSP.
    assert!((lut - 0.584).abs() < 0.02);
    assert!((ff - 0.235).abs() < 0.02);
    assert!((bram - 0.576).abs() < 0.02);
    assert!((uram - 0.200).abs() < 0.02);
    assert!((dsp - 0.388).abs() < 0.02);
}

#[test]
fn table2_fixar_leads_normalized_and_efficiency() {
    let model = FixarPlatformModel::for_benchmark(17, 6).unwrap();
    let peak = model.accelerator_ips(512, Precision::Full32);
    let eff = PowerModel::ips_per_watt(model.accelerator_ips(512, Precision::Half16), 20.4);
    let rows = comparison::table2(peak, eff);
    let fixar_kb = rows[2].network_kb;
    let fixar_norm = rows[2].normalized_peak_ips(fixar_kb);
    for other in &rows[..2] {
        assert!(
            fixar_norm > other.normalized_peak_ips(fixar_kb),
            "{}",
            other.name
        );
    }
    assert!(rows[2].ips_per_watt.unwrap() > rows[0].ips_per_watt.unwrap());
}

#[test]
fn env_dimensions_drive_the_agent_shapes() {
    // The full pipeline builds paper-shaped networks from env specs.
    for (kind, actor_in, actor_out) in [
        (EnvKind::HalfCheetah, 17, 6),
        (EnvKind::Hopper, 11, 3),
        (EnvKind::Swimmer, 8, 2),
    ] {
        let env = kind.make(0);
        let spec = env.spec();
        let agent = Ddpg::<f32>::new(spec.obs_dim, spec.action_dim, DdpgConfig::default()).unwrap();
        assert_eq!(agent.actor().layer_sizes()[0], actor_in);
        assert_eq!(*agent.actor().layer_sizes().last().unwrap(), actor_out);
        assert_eq!(agent.critic().layer_sizes()[0], actor_in + actor_out);
    }
}

#[test]
#[ignore = "release-scale learning check: cargo test --release -- --ignored"]
fn ddpg_learns_pendulum_in_fixed_point() {
    let mut cfg = DdpgConfig::small_test();
    cfg.hidden = (64, 48);
    cfg.batch_size = 64;
    cfg.warmup_steps = 500;
    cfg.actor_lr = 1e-3;
    cfg.critic_lr = 1e-3;
    cfg.exploration_sigma = 0.15;
    let mut trainer = Trainer::<Fx32>::new(
        Box::new(fixar_env::Pendulum::new(1)),
        Box::new(fixar_env::Pendulum::new(99)),
        cfg,
    )
    .unwrap();
    let report = trainer.run(15_000, 2_500, 5).unwrap();
    let first = report.curve.first().unwrap().avg_reward;
    let last = report.tail_mean(2);
    assert!(
        last > first + 300.0 && last > -400.0,
        "fixed-point DDPG should learn: first {first}, last {last}"
    );
}
