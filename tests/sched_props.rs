//! Scheduling-model suite: the contracts that make phase-scoped
//! heterogeneous scheduling and double-buffered serving safe to use as
//! the hot paths.
//!
//! Three pillars, mirroring `tests/fleet_props.rs`:
//!
//! 1. **Fused ≡ sequential** — the fused-scope training updates (TD3's
//!    twin critics under single-join scopes, DDPG's fused target/critic
//!    forwards, the per-layer fused backward everywhere) are
//!    bit-identical to the per-sample sequential reference, down to raw
//!    `Fx32` weights, at workers {1, 2, 8}.
//! 2. **Overlapped ≡ lockstep** — a double-buffered `VecTrainer` run
//!    (two observation buffers, the pool inferring one half while the
//!    host steps the other) reproduces the lockstep run bit-for-bit:
//!    reports, raw weights, replay contents — at every fleet size and
//!    worker count, with and without QAT, and a fleet of one stays
//!    locked to the scalar `Trainer`.
//! 3. **Model/software agreement** — the accelerator's fused-schedule
//!    accounting runs exactly the summed MAC work of the passes it
//!    fuses, mirroring the software contract that fusing never changes
//!    arithmetic.

use fixar_accel::BatchedInferenceSchedule;
use fixar_env::{EnvKind, EnvPool};
use fixar_nn::forward_batch_fused;
use fixar_pool::Parallelism;
use fixar_repro::prelude::*;
use fixar_rl::{Td3, Td3Config, Transition, TransitionBatch, VecTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn toy_batch(seed: u64, n: usize) -> Vec<Transition> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Every state component drawn independently: a column-indexing bug
    // in the fused kernels must change bytes, not alias identical ones.
    (0..n)
        .map(|_| Transition {
            state: (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            action: vec![rng.gen_range(-1.0..1.0)],
            reward: rng.gen_range(-1.0..1.0),
            next_state: (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            terminal: rng.gen_bool(0.1),
        })
        .collect()
}

/// Pillar 1, TD3 (the acceptance criterion): the fused twin-critic
/// minibatch step — fused target forwards, fused regression forwards,
/// fused twin backward — equals the per-sample sequential reference
/// bit-for-bit at workers {1, 2, 8}, across enough updates to fire the
/// delayed actor update twice.
#[test]
fn fused_td3_twin_critic_step_is_bit_exact_at_workers_1_2_8() {
    let data = toy_batch(3, 20);
    let refs: Vec<&Transition> = data.iter().collect();
    let batch = TransitionBatch::from_transitions(&refs).unwrap();

    let mut reference = Td3::<Fx32>::new(3, 1, Td3Config::small_test()).unwrap();
    let mut fused: Vec<Td3<Fx32>> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            let mut agent = reference.clone();
            agent.set_parallelism(Parallelism::with_workers(w));
            agent
        })
        .collect();
    for step in 0..4 {
        let m_ref = reference.train_batch(&refs).unwrap();
        for agent in fused.iter_mut() {
            let m = agent.train_minibatch(&batch).unwrap();
            assert_eq!(m_ref, m, "metrics diverged at step {step}");
        }
    }
    for agent in &fused {
        assert_eq!(reference.actor(), agent.actor(), "actor weights");
        assert_eq!(reference.critics(), agent.critics(), "twin critic weights");
    }
}

/// Pillar 1, DDPG: the fused target-actor/online-critic forward phase
/// keeps `train_minibatch` bit-identical to the per-sample reference at
/// workers {1, 2, 8}.
#[test]
fn fused_ddpg_step_is_bit_exact_at_workers_1_2_8() {
    let data = toy_batch(5, 24);
    let refs: Vec<&Transition> = data.iter().collect();
    let batch = TransitionBatch::from_transitions(&refs).unwrap();

    let mut reference = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test()).unwrap();
    let mut fused: Vec<Ddpg<Fx32>> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            let mut agent = reference.clone();
            agent.set_parallelism(Parallelism::with_workers(w));
            agent
        })
        .collect();
    for step in 0..4 {
        let m_ref = reference.train_batch(&refs).unwrap();
        for agent in fused.iter_mut() {
            let m = agent.train_minibatch(&batch).unwrap();
            assert_eq!(m_ref, m, "metrics diverged at step {step}");
        }
    }
    for agent in &fused {
        assert_eq!(reference.actor(), agent.actor());
        assert_eq!(reference.critic(), agent.critic());
    }
}

fn fleet_trainer(n: usize, cfg: DdpgConfig, overlap: bool, workers: usize) -> VecTrainer<Fx32> {
    let mut t = VecTrainer::new(
        EnvPool::from_kind(EnvKind::Pendulum, n, cfg.seed),
        EnvKind::Pendulum.make(cfg.seed.wrapping_add(1)),
        cfg,
    )
    .unwrap();
    t.set_overlap(overlap);
    t.agent_mut()
        .set_parallelism(Parallelism::with_workers(workers));
    t
}

/// Pillar 2 (the acceptance criterion): overlapped runs equal lockstep
/// runs bit-for-bit — reports, raw Fx32 weights, replay contents in
/// order — at fleet sizes {1, 3, 4} (odd sizes exercise the ragged
/// split) × workers {1, 2, 8}.
#[test]
fn overlapped_vec_trainer_is_bit_identical_to_lockstep_at_workers_1_2_8() {
    for n in [1usize, 3, 4] {
        let cfg = DdpgConfig::small_test().with_seed(29);
        let mut lock = fleet_trainer(n, cfg.clone(), false, 1);
        let r_lock = lock.run(90, 45, 1).unwrap();
        for workers in [1usize, 2, 8] {
            let mut over = fleet_trainer(n, cfg.clone(), true, workers);
            let r_over = over.run(90, 45, 1).unwrap();
            assert_eq!(r_lock, r_over, "fleet {n}, workers {workers}: reports");
            assert_eq!(
                lock.agent().actor(),
                over.agent().actor(),
                "fleet {n}, workers {workers}: actor weights"
            );
            assert_eq!(
                lock.agent().critic(),
                over.agent().critic(),
                "fleet {n}, workers {workers}: critic weights"
            );
            assert_eq!(
                lock.replay().transitions(),
                over.replay().transitions(),
                "fleet {n}, workers {workers}: replay order/content"
            );
        }
    }
}

/// Pillar 2 under the QAT schedule: calibration (order-independent
/// range monitors over split observation buffers), the freeze switch,
/// and quantized training all agree between the two modes.
#[test]
fn overlapped_vec_trainer_matches_lockstep_under_qat() {
    let cfg = DdpgConfig::small_test().with_seed(7).with_qat(80, 16);
    let mut lock = fleet_trainer(4, cfg.clone(), false, 1);
    let mut over = fleet_trainer(4, cfg, true, 2);
    let a = lock.run(160, 80, 1).unwrap();
    let b = over.run(160, 80, 1).unwrap();
    assert_eq!(a.qat_switch_step, Some(320), "schedule must fire");
    assert_eq!(a, b, "QAT training reports");
    assert!(lock.agent().qat_frozen() && over.agent().qat_frozen());
    assert_eq!(lock.agent().actor(), over.agent().actor());
    assert_eq!(lock.replay().transitions(), over.replay().transitions());
}

/// Pillar 2's anchor: an overlapped fleet of one still reproduces the
/// scalar `Trainer` bit-for-bit (overlap degrades to lockstep below
/// two slots, so the whole fleet-of-one contract carries over).
#[test]
fn overlapped_fleet_of_one_reproduces_scalar_trainer() {
    let cfg = DdpgConfig::small_test().with_seed(13);
    let mut scalar = Trainer::<Fx32>::new(
        EnvKind::Pendulum.make(cfg.seed),
        EnvKind::Pendulum.make(cfg.seed.wrapping_add(1)),
        cfg.clone(),
    )
    .unwrap();
    let mut fleet = fleet_trainer(1, cfg, true, 2);
    let a = scalar.run(230, 115, 1).unwrap();
    let b = fleet.run(230, 115, 1).unwrap();
    assert_eq!(a, b, "training reports");
    assert_eq!(scalar.agent().actor(), fleet.agent().actor());
    assert_eq!(scalar.replay().transitions(), fleet.replay().transitions());
}

/// Pillar 3: the accelerator's fused-schedule accounting and the
/// software fused forward agree — same MAC work as the separate
/// passes, outputs unchanged, strictly fewer cycles than back-to-back
/// schedules.
#[test]
fn fused_schedule_accounting_agrees_with_software_fused_forward() {
    let td3 = Td3::<Fx32>::new(3, 1, Td3Config::small_test()).unwrap();
    let (c1, c2) = td3.critics();
    let x = fixar_tensor::Matrix::<f64>::from_fn(16, 4, |b, i| {
        ((b * 5 + i * 3) % 13) as f64 * 0.21 - 1.2
    })
    .cast::<Fx32>();
    let par = Parallelism::with_workers(2);
    // Software: fused twin forward ≡ separate forwards.
    let fused = forward_batch_fused(&[c1, c2], &[&x, &x], &par).unwrap();
    assert_eq!(fused[0], c1.forward_batch(&x).unwrap());
    assert_eq!(fused[1], c2.forward_batch(&x).unwrap());
    // Structural model: fused schedule = summed MACs, fewer cycles.
    let acc = AccelConfig::default();
    let sizes: Vec<usize> = c1.layer_sizes().to_vec();
    let solo = BatchedInferenceSchedule::for_mlp(&acc, &sizes, 16, Precision::Full32);
    let twin =
        BatchedInferenceSchedule::for_mlps_fused(&acc, &[&sizes, &sizes], 16, Precision::Full32);
    assert_eq!(twin.macs, 2 * solo.macs, "fused work is the sum");
    assert!(twin.cycles < 2 * solo.cycles, "fused joins cost less");
    assert!(twin.utilization() > solo.utilization());
}
