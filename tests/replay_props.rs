//! Replay-at-scale property suite: the contracts that make the
//! structure-of-arrays ring buffer safe to swap under every trainer.
//!
//! Four pillars, mirroring `tests/fleet_props.rs` (the CI determinism
//! matrix runs this suite at `FIXAR_WORKERS` ∈ {1, 2, 8} as a named
//! step):
//!
//! 1. **Legacy equivalence** — against the shared array-of-structs
//!    reference model (`fixar_bench::legacy_replay`, the pre-SoA
//!    buffer verbatim — one copy, also the bench baseline), the SoA
//!    ring stores the same transitions, draws the same uniform indices
//!    from the same RNG states, and gathers bit-identical
//!    `TransitionBatch`es.
//! 2. **Gather worker-invariance** — `gather_columns_par` through the
//!    replay buffer is bit-identical to the sequential gather at every
//!    worker count.
//! 3. **Wrap-around** — insertion past capacity overwrites oldest
//!    entries and sampling never yields evicted transitions, at
//!    capacities that divide and don't divide the insertion count, both
//!    standalone and through a full `Trainer` run.
//! 4. **Prioritized replay** — the new workload is deterministic per
//!    seed, worker-invariant, and its importance weights really reach
//!    the batched loss (all-ones weights are bit-identical to the
//!    unweighted path; non-uniform weights are not).

use fixar_bench::legacy_replay::{
    synthetic_transition as synthetic, LegacyReplayBuffer as LegacyModel,
};
use fixar_pool::Parallelism;
use fixar_repro::prelude::*;
use fixar_rl::{PrioritizedConfig, ReplaySampler, ReplayStrategy, Td3, Td3Config, TransitionBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pillar 1 (acceptance criterion): same pushes, same mid-stream RNG
/// state ⇒ same stored contents, bit-identical sampled batches, and
/// identical RNG end states — across fill levels below, at, and past
/// capacity.
#[test]
fn soa_ring_reproduces_the_legacy_buffer_bit_for_bit() {
    // Push 54 transitions total into a capacity-24 ring, checking at
    // fill 10 (part full), 24 (exactly full), and 54 (wrapped past
    // capacity — twice around plus a remainder).
    let capacity = 24;
    let mut soa = ReplayBuffer::new(capacity);
    let mut legacy = LegacyModel::new(capacity);
    let mut pushed = 0usize;
    for checkpoint in [10usize, 24, 54] {
        while pushed < checkpoint {
            let t = synthetic(pushed, 3, 2);
            soa.push(t.clone());
            legacy.push(t);
            pushed += 1;
        }
        assert_eq!(soa.transitions(), legacy.storage, "contents at {pushed}");
        // Mid-stream RNG state, shared by both paths.
        let mut rng = StdRng::seed_from_u64(pushed as u64);
        for _ in 0..3 {
            let _: f64 = rng.gen_range(0.0..1.0);
        }
        let mut rng_soa = rng.clone();
        let mut rng_leg = rng.clone();
        for batch in [1usize, 8, 23, 24, 25] {
            let a = soa.sample_batch(batch, &mut rng_soa);
            let b = legacy.sample_batch(batch, &mut rng_leg);
            assert_eq!(a, b, "batch {batch} at fill {pushed}");
        }
        assert_eq!(rng_soa, rng_leg, "RNG end state at fill {pushed}");
    }
}

/// Pillar 2: the pool-parallel gather is bit-identical to the
/// sequential one at the matrix worker counts, for shard-awkward batch
/// sizes (the acceptance criterion's workers {1, 2, 8}).
#[test]
fn replay_gather_par_bit_identical_at_workers_1_2_8() {
    let mut buf = ReplayBuffer::new(37);
    for i in 0..37 {
        buf.push(synthetic(i, 5, 2));
    }
    for batch in [1usize, 7, 16, 32] {
        let mut rng = StdRng::seed_from_u64(batch as u64);
        let indices = buf.sample_indices(batch, &mut rng);
        let seq = buf.gather(&indices);
        for workers in [1usize, 2, 8] {
            let par = Parallelism::with_workers(workers);
            assert_eq!(
                buf.gather_par(&indices, &par),
                seq,
                "batch {batch}, workers {workers}"
            );
            // And through the drawing entry point, from equal RNG states.
            let mut r1 = StdRng::seed_from_u64(99 + batch as u64);
            let mut r2 = r1.clone();
            assert_eq!(
                buf.sample_batch(batch, &mut r1),
                buf.sample_batch_par(batch, &mut r2, &par)
            );
            assert_eq!(r1, r2);
        }
    }
}

/// Pillar 3 standalone: wrap-around eviction at capacities that divide
/// (60 = 12×5) and don't divide (60 vs 13) the insertion count.
#[test]
fn wraparound_sampling_never_yields_evicted_transitions() {
    let pushes = 60usize;
    for capacity in [12usize, 13] {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(synthetic(i, 2, 1));
        }
        assert_eq!(buf.len(), capacity);
        let floor = (pushes - capacity) as f64;
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..60 {
            let batch = buf.sample_batch(capacity, &mut rng).unwrap();
            for b in 0..batch.len() {
                let r = batch.rewards()[b];
                assert!(
                    (floor..pushes as f64).contains(&r),
                    "capacity {capacity}: evicted transition {r} sampled"
                );
                seen.insert(r as i64);
            }
        }
        assert_eq!(seen.len(), capacity, "capacity {capacity}: full coverage");
    }
}

/// Pillar 3 through the full trainer: before the first training update
/// the pushed trajectory is capacity-independent, so a small ring must
/// hold exactly the newest `capacity` transitions of the identical
/// big-buffer run — oldest-first eviction under the real insertion
/// pattern, at a capacity that divides the push count and one that
/// doesn't. Then training past the wrap keeps running and stays
/// deterministic.
#[test]
fn trainer_wraparound_keeps_exactly_the_newest_transitions() {
    // 60 warmup-phase pushes: capacity 30 divides, 13 doesn't. With
    // batch_size > pushes no training update fires, so the trajectory
    // is independent of the replay capacity and the tails must match.
    let pushes = 60u64;
    for capacity in [30usize, 13] {
        let mut big_cfg = DdpgConfig::small_test().with_seed(4);
        big_cfg.batch_size = 1_000; // replay always underflows: no updates
        big_cfg.replay_capacity = 4_096; // never wraps
        let mut small_cfg = big_cfg.clone();
        small_cfg.replay_capacity = capacity;
        let make = |cfg| {
            Trainer::<Fx32>::new(EnvKind::Pendulum.make(4), EnvKind::Pendulum.make(5), cfg).unwrap()
        };
        let mut big = make(big_cfg);
        let mut small = make(small_cfg);
        big.run(pushes, pushes, 1).unwrap();
        small.run(pushes, pushes, 1).unwrap();
        assert_eq!(small.replay_len(), capacity, "capacity {capacity}: full");
        let big_all = big.replay().transitions();
        // Ring order: slot (i mod capacity) holds push i for the newest
        // writes, so sorting the small buffer by push order must equal
        // the big run's newest `capacity` transitions.
        let mut small_in_push_order = Vec::with_capacity(capacity);
        let total = pushes as usize;
        for i in (total - capacity)..total {
            small_in_push_order.push(small.replay().transition(i % capacity));
        }
        assert_eq!(
            small_in_push_order,
            big_all[total - capacity..],
            "capacity {capacity}: ring must hold exactly the newest transitions"
        );
    }

    // And training past the wrap keeps running, deterministically.
    let mut cfg = DdpgConfig::small_test().with_seed(4);
    cfg.replay_capacity = 80; // wraps during the 200-step run
    let run = || {
        let mut t = Trainer::<Fx32>::new(
            EnvKind::Pendulum.make(4),
            EnvKind::Pendulum.make(5),
            cfg.clone(),
        )
        .unwrap();
        let r = t.run(200, 200, 1).unwrap();
        (r, t.replay().transitions())
    };
    let (ra, ta) = run();
    let (rb, tb) = run();
    assert_eq!(ra, rb, "wrapped training run must be deterministic");
    assert_eq!(ta, tb);
    assert!(ra.final_metrics.critic_loss.is_finite());
    assert_eq!(ta.len(), 80);
}

/// Pillar 4: all-ones importance weights are bit-identical to the
/// unweighted batched update (w·scale with w = 1.0 is exact in f64), in
/// DDPG and TD3, Fx32 — proof the weighted path introduces no rounding
/// of its own; and genuinely non-uniform weights change the update —
/// proof the weights actually reach the loss.
#[test]
fn unit_weights_are_bit_exact_and_real_weights_bite() {
    let data: Vec<Transition> = (0..20).map(|i| synthetic(i, 3, 1)).collect();
    let refs: Vec<&Transition> = data.iter().collect();
    let batch = TransitionBatch::from_transitions(&refs).unwrap();
    let ones = vec![1.0; batch.len()];
    let skewed: Vec<f64> = (0..batch.len()).map(|i| 1.0 / (1.0 + i as f64)).collect();

    // DDPG.
    let mut plain = Ddpg::<Fx32>::new(3, 1, DdpgConfig::small_test()).unwrap();
    let mut weighted = plain.clone();
    let mut skewed_agent = plain.clone();
    for _ in 0..3 {
        let m = plain.train_minibatch(&batch).unwrap();
        let (mw, tds) = weighted
            .train_minibatch_weighted(&batch, Some(&ones))
            .unwrap();
        assert_eq!(m, mw, "DDPG: unit weights must not re-round");
        assert_eq!(tds.len(), batch.len());
        assert!(tds.iter().all(|t| t.is_finite()));
        skewed_agent
            .train_minibatch_weighted(&batch, Some(&skewed))
            .unwrap();
    }
    assert_eq!(plain.actor(), weighted.actor());
    assert_eq!(plain.critic(), weighted.critic());
    assert_ne!(
        plain.critic(),
        skewed_agent.critic(),
        "DDPG: non-uniform weights must change the critic"
    );

    // TD3 (twin critics, delayed actor).
    let mut plain = Td3::<Fx32>::new(3, 1, Td3Config::small_test()).unwrap();
    let mut weighted = plain.clone();
    let mut skewed_agent = plain.clone();
    for _ in 0..4 {
        let m = plain.train_minibatch(&batch).unwrap();
        let (mw, tds) = weighted
            .train_minibatch_weighted(&batch, Some(&ones))
            .unwrap();
        assert_eq!(m, mw, "TD3: unit weights must not re-round");
        assert_eq!(tds.len(), batch.len());
        skewed_agent
            .train_minibatch_weighted(&batch, Some(&skewed))
            .unwrap();
    }
    assert_eq!(plain.actor(), weighted.actor());
    assert_eq!(plain.critics(), weighted.critics());
    assert_ne!(plain.critics().0, skewed_agent.critics().0);
}

/// Pillar 4 through the trainers: prioritized runs are deterministic
/// per seed and bit-identical across pool worker counts {1, 2, 8}, for
/// both the scalar `Trainer` and a 3-env `VecTrainer`.
#[test]
fn prioritized_runs_worker_invariant_scalar_and_fleet() {
    let cfg = DdpgConfig::small_test()
        .with_seed(6)
        .with_replay(ReplayStrategy::Prioritized(PrioritizedConfig::default()));

    let scalar_run = |workers: usize| {
        let mut t = Trainer::<Fx32>::new(
            EnvKind::Pendulum.make(6),
            EnvKind::Pendulum.make(7),
            cfg.clone(),
        )
        .unwrap();
        t.agent_mut()
            .set_parallelism(Parallelism::with_workers(workers));
        let r = t.run(120, 120, 1).unwrap();
        (r, t)
    };
    let (r1, t1) = scalar_run(1);
    assert!(r1.final_metrics.critic_loss.is_finite());
    for workers in [2usize, 8] {
        let (r, t) = scalar_run(workers);
        assert_eq!(r1, r, "scalar workers {workers}");
        assert_eq!(t1.agent().actor(), t.agent().actor());
        assert_eq!(t1.replay().transitions(), t.replay().transitions());
    }

    let fleet_run = |workers: usize| {
        let mut t = VecTrainer::<Fx32>::new(
            EnvPool::from_kind(EnvKind::Pendulum, 3, 6),
            EnvKind::Pendulum.make(7),
            cfg.clone(),
        )
        .unwrap();
        t.agent_mut()
            .set_parallelism(Parallelism::with_workers(workers));
        let r = t.run(90, 90, 1).unwrap();
        (r, t)
    };
    let (f1, ft1) = fleet_run(1);
    for workers in [2usize, 8] {
        let (f, ft) = fleet_run(workers);
        assert_eq!(f1, f, "fleet workers {workers}");
        assert_eq!(ft1.agent().actor(), ft.agent().actor());
        assert_eq!(ft1.replay().transitions(), ft.replay().transitions());
    }
}

/// The uniform sampler arm is byte-for-byte the raw buffer draw — one
/// shared path through `ReplaySampler`, so trainer-level sampling can
/// never drift from the unit-level contract.
#[test]
fn uniform_sampler_shares_the_buffer_draw_path() {
    let mut buf = ReplayBuffer::new(40);
    for i in 0..40 {
        buf.push(synthetic(i, 4, 2));
    }
    let mut sampler = ReplaySampler::new(ReplayStrategy::Uniform, 40);
    let par = Parallelism::with_workers(2);
    let mut r1 = StdRng::seed_from_u64(31);
    let mut r2 = r1.clone();
    let direct = buf.sample_batch(16, &mut r1).unwrap();
    let via_sampler = sampler.sample(&buf, 16, &mut r2, &par).unwrap();
    assert_eq!(via_sampler.batch, direct);
    assert!(via_sampler.weights.is_none());
    assert_eq!(r1, r2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized pillar 1: arbitrary capacities, push counts, and
    /// batch sizes — the SoA ring and the legacy model agree on
    /// contents and on every sampled batch.
    #[test]
    fn soa_matches_legacy_for_arbitrary_shapes(
        capacity in 1usize..48,
        pushes in 1usize..120,
        batch in 1usize..32,
        seed in 0u64..500,
    ) {
        let mut soa = ReplayBuffer::new(capacity);
        let mut legacy = LegacyModel::new(capacity);
        for i in 0..pushes {
            let t = synthetic(i, 3, 2);
            soa.push(t.clone());
            legacy.push(t);
        }
        prop_assert_eq!(soa.len(), pushes.min(capacity));
        prop_assert_eq!(soa.transitions(), legacy.storage.clone());
        let mut ra = StdRng::seed_from_u64(seed);
        let mut rb = ra.clone();
        prop_assert_eq!(soa.sample_batch(batch, &mut ra), legacy.sample_batch(batch, &mut rb));
        prop_assert_eq!(ra, rb);
    }

    /// Randomized pillar 2: the parallel gather is worker-invariant for
    /// arbitrary index multisets (duplicates included).
    #[test]
    fn gather_worker_invariant_for_arbitrary_indices(
        capacity in 1usize..40,
        picks in prop::collection::vec(0usize..1000, 1..40),
        workers in 2usize..9,
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..capacity {
            buf.push(synthetic(i, 3, 1));
        }
        let indices: Vec<usize> = picks.into_iter().map(|p| p % capacity).collect();
        let seq = buf.gather(&indices);
        let par = Parallelism::with_workers(workers);
        prop_assert_eq!(buf.gather_par(&indices, &par), seq);
    }
}
