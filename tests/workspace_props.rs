//! Workspace-level property tests spanning crates: the invariants that
//! tie the numeric substrate, the NN stack, and the accelerator model
//! together.

use fixar_repro::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The structural AAP-core path equals the software forward pass for
    /// arbitrary small networks and inputs (full precision).
    #[test]
    fn accel_forward_equals_nn_forward(
        seed in 0u64..1000,
        in_dim in 2usize..8,
        hidden in 4usize..24,
        out_dim in 1usize..4,
        scale in 0.1f64..2.0,
    ) {
        let actor = Mlp::<Fx32>::new_random(
            &MlpConfig::new(vec![in_dim, hidden, out_dim])
                .with_output_activation(Activation::Tanh),
            seed,
        ).unwrap();
        let critic = Mlp::<Fx32>::new_random(
            &MlpConfig::new(vec![in_dim + out_dim, hidden, 1]),
            seed + 1,
        ).unwrap();
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&actor, &critic).unwrap();
        let state: Vec<Fx32> = (0..in_dim)
            .map(|i| Fx32::from_f64(((i as f64) * 0.71 + seed as f64 * 0.01).sin() * scale))
            .collect();
        let (hw, _) = accel.actor_inference(&state, Precision::Full32).unwrap();
        let sw = actor.forward(&state).unwrap();
        prop_assert_eq!(hw, sw);
    }

    /// The batched structural AAP-core path equals the batched software
    /// forward pass — and therefore (by the nn-layer contract) the
    /// per-sample path too — for arbitrary small networks and batches.
    #[test]
    fn accel_batched_forward_equals_nn_forward_batch(
        seed in 0u64..500,
        in_dim in 2usize..8,
        hidden in 4usize..24,
        out_dim in 1usize..4,
        batch in 1usize..10,
    ) {
        use fixar_tensor::Matrix;
        let actor = Mlp::<Fx32>::new_random(
            &MlpConfig::new(vec![in_dim, hidden, out_dim])
                .with_output_activation(Activation::Tanh),
            seed,
        ).unwrap();
        let critic = Mlp::<Fx32>::new_random(
            &MlpConfig::new(vec![in_dim + out_dim, hidden, 1]),
            seed + 1,
        ).unwrap();
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&actor, &critic).unwrap();
        let states = Matrix::<f64>::from_fn(batch, in_dim, |b, i| {
            ((b * 17 + i * 3) as f64 * 0.19 + seed as f64 * 0.01).sin()
        }).cast::<Fx32>();
        let (hw, cycles) = accel.actor_inference_batch(&states, Precision::Full32).unwrap();
        let sw = actor.forward_batch(&states).unwrap();
        prop_assert_eq!(hw, sw);
        prop_assert!(cycles > 0);
    }

    /// Fake quantization through the full QAT runtime never moves an
    /// activation by more than one quantizer step.
    #[test]
    fn qat_projection_error_is_bounded(
        lo in -10.0..-0.1f64,
        hi in 0.1..10.0f64,
        x in -12.0..12.0f64,
    ) {
        let q = AffineQuantizer::from_range(lo, hi, 16).unwrap();
        let v = Fx32::from_f64(x);
        let out = q.fake_quantize_scalar(v);
        let clamped = x.clamp(lo, hi);
        // In-range inputs move at most one step (+ Fx32 grid noise);
        // out-of-range inputs clamp toward the range.
        prop_assert!(
            (out.to_f64() - clamped).abs() <= q.delta() + 2e-5,
            "x={} out={} delta={}", x, out.to_f64(), q.delta()
        );
    }

    /// Platform IPS is monotone in batch size for both platforms
    /// (Fig. 8's visual claim) for any reasonable benchmark shape.
    #[test]
    fn platform_ips_monotone_in_batch(
        obs in 3usize..32,
        act in 1usize..8,
    ) {
        let model = FixarPlatformModel::for_benchmark(obs, act).unwrap();
        let mut prev = 0.0;
        for batch in [32usize, 64, 128, 256, 512] {
            let ips = model.ips(batch, Precision::Half16).unwrap();
            prop_assert!(ips > prev);
            prev = ips;
        }
    }

    /// Training is seed-deterministic end to end: two trainers with the
    /// same seeds produce identical weights after identical steps.
    #[test]
    fn training_is_seed_deterministic(seed in 0u64..50) {
        let run = |s: u64| {
            let cfg = DdpgConfig::small_test().with_seed(s);
            let mut t = Trainer::<Fx32>::new(
                Box::new(fixar_env::Pendulum::new(s)),
                Box::new(fixar_env::Pendulum::new(s + 1)),
                cfg,
            ).unwrap();
            t.run(120, 120, 1).unwrap();
            t.agent().actor().weight(0).as_slice()[..4].to_vec()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// The pool-parallel batched inference path of the accelerator is
    /// bit-identical to its sequential form at every worker count.
    #[test]
    fn accel_batched_inference_bit_exact_across_worker_counts(
        seed in 0u64..100,
        in_dim in 2usize..6,
        hidden in 4usize..16,
        batch in 1usize..12,
    ) {
        use fixar_tensor::{Matrix, Parallelism};
        let actor = Mlp::<Fx32>::new_random(
            &MlpConfig::new(vec![in_dim, hidden, 2])
                .with_output_activation(Activation::Tanh),
            seed,
        ).unwrap();
        let critic = Mlp::<Fx32>::new_random(
            &MlpConfig::new(vec![in_dim + 2, hidden, 1]),
            seed + 1,
        ).unwrap();
        let mut accel = FixarAccelerator::new(AccelConfig::default()).unwrap();
        accel.load_ddpg(&actor, &critic).unwrap();
        let states = Matrix::<f64>::from_fn(batch, in_dim, |b, i| {
            ((b * 11 + i * 5) as f64 * 0.17 + seed as f64 * 0.01).sin()
        }).cast::<Fx32>();

        accel.set_parallelism(Parallelism::sequential());
        let (seq, seq_cycles) = accel.actor_inference_batch(&states, Precision::Full32).unwrap();
        for workers in [2usize, 4] {
            accel.set_parallelism(Parallelism::with_workers(workers));
            let (par, cycles) = accel.actor_inference_batch(&states, Precision::Full32).unwrap();
            prop_assert_eq!(&par, &seq, "workers {}", workers);
            // The cycle model describes the hardware, not the host pool.
            prop_assert_eq!(cycles, seq_cycles);
        }
    }

    /// The resource model scales monotonically with every driving
    /// parameter and never reports negative usage.
    #[test]
    fn resource_model_is_monotone(cores in 1usize..6, lanes in 1usize..64) {
        let cfg = AccelConfig {
            n_cores: cores,
            adam_lanes: lanes,
        ..AccelConfig::default()
        };
        let m = ResourceModel::new(cfg);
        let t = m.total();
        prop_assert!(t.lut > 0.0 && t.ff > 0.0 && t.dsp > 0.0);
        let mut bigger = cfg;
        bigger.n_cores = cores + 1;
        let tb = ResourceModel::new(bigger).total();
        prop_assert!(tb.lut > t.lut);
        prop_assert!(tb.dsp > t.dsp);
    }
}

// Fewer cases for the worker sweeps: each case trains several agents at
// several worker counts through multiple full updates.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole contract across the whole stack: pool-parallel
    /// `train_minibatch` ≡ sequential `train_minibatch` ≡ per-sample
    /// `train_batch`, down to the raw `Fx32` weight bits, for DDPG and
    /// TD3 across worker counts 1–4.
    #[test]
    fn pooled_training_bit_exact_across_worker_counts(
        seed in 0u64..1000,
        batch_size in 2usize..14,
    ) {
        use fixar_rl::{Td3, Td3Config, TransitionBatch};
        use fixar_tensor::Parallelism;
        let data: Vec<Transition> = (0..batch_size)
            .map(|i| {
                let v = ((i as f64) * 0.7 + seed as f64 * 0.13).sin();
                Transition {
                    state: vec![v, -v * 0.5, v * 0.25],
                    action: vec![v * 0.5],
                    reward: v,
                    next_state: vec![v + 0.1, v - 0.1, v],
                    terminal: i % 7 == 6,
                }
            })
            .collect();
        let refs: Vec<&Transition> = data.iter().collect();
        let batch = TransitionBatch::from_transitions(&refs).unwrap();

        // DDPG: per-sample reference vs minibatch at workers 1..=4.
        let cfg = DdpgConfig::small_test().with_seed(seed);
        let mut reference = Ddpg::<Fx32>::new(3, 1, cfg).unwrap();
        let mut agents: Vec<Ddpg<Fx32>> = (1usize..=4)
            .map(|w| {
                let mut a = reference.clone();
                a.set_parallelism(Parallelism::with_workers(w));
                a
            })
            .collect();
        for _ in 0..2 {
            let m_ref = reference.train_batch(&refs).unwrap();
            for a in agents.iter_mut() {
                prop_assert_eq!(m_ref, a.train_minibatch(&batch).unwrap());
            }
        }
        for a in &agents {
            for l in 0..reference.actor().num_layers() {
                prop_assert_eq!(reference.actor().weight(l), a.actor().weight(l));
                prop_assert_eq!(reference.critic().weight(l), a.critic().weight(l));
                prop_assert_eq!(reference.actor().bias(l), a.actor().bias(l));
                prop_assert_eq!(reference.critic().bias(l), a.critic().bias(l));
            }
        }

        // TD3: twin critics, delayed policy, shared RNG stream.
        let tcfg = Td3Config { seed, ..Td3Config::small_test() };
        let mut treference = Td3::<Fx32>::new(3, 1, tcfg).unwrap();
        let mut tagents: Vec<Td3<Fx32>> = (1usize..=4)
            .map(|w| {
                let mut a = treference.clone();
                a.set_parallelism(Parallelism::with_workers(w));
                a
            })
            .collect();
        // Two updates: the second fires the delayed actor update.
        for _ in 0..2 {
            let m_ref = treference.train_batch(&refs).unwrap();
            for a in tagents.iter_mut() {
                prop_assert_eq!(m_ref, a.train_minibatch(&batch).unwrap());
            }
        }
        for a in &tagents {
            prop_assert_eq!(treference.actor(), a.actor());
            prop_assert_eq!(treference.critics(), a.critics());
        }
    }
}
