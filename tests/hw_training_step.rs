//! The capstone equivalence test: one complete training step executed
//! through the *hardware* paths — structural forward through the AAP
//! core (column dataflow), structural error back-propagation through the
//! transposed dataflow (`mvm_rows`), gradient outer products, and the
//! Adam unit updating the weight-memory image — must be bit-exact
//! against the software stack (`Mlp::forward_trace` / `Mlp::backward` /
//! `fixar_nn::Adam`).
//!
//! This is the property that justifies the platform design: functional
//! training state can be advanced by either implementation
//! interchangeably.

use fixar_accel::{AapCore, AdamUnit, WeightMemory};
use fixar_nn::MlpGrads;
use fixar_repro::prelude::*;

/// Structural forward pass through the weight-memory image, capturing
/// the same trace the software forward produces.
fn hw_forward(
    mem: &WeightMemory,
    image: &fixar_accel::NetworkImage,
    core: &AapCore,
    input: &[Fx32],
) -> (Vec<Vec<Fx32>>, Vec<Vec<Fx32>>, Vec<Fx32>) {
    let n = image.num_layers();
    let mut inputs = Vec::with_capacity(n);
    let mut pre = Vec::with_capacity(n);
    let mut act = input.to_vec();
    for (l, layer) in image.layers.iter().enumerate() {
        let w = mem.layer_matrix(layer);
        let mut z = vec![Fx32::ZERO; layer.rows];
        core.mvm_columns(&w, &act, 0, 1, &mut z);
        for (i, zi) in z.iter_mut().enumerate() {
            *zi += mem.bias(layer, i);
        }
        let a = if l + 1 == n {
            image.output_activation
        } else {
            image.hidden_activation
        };
        let mut y = z.clone();
        for v in &mut y {
            *v = a.apply(*v);
        }
        inputs.push(act);
        pre.push(z);
        act = y;
    }
    (inputs, pre, act)
}

/// Structural backward pass: output error → per-layer weight/bias
/// gradients via the transposed dataflow and outer products.
fn hw_backward(
    mem: &WeightMemory,
    image: &fixar_accel::NetworkImage,
    core: &AapCore,
    inputs: &[Vec<Fx32>],
    pre: &[Vec<Fx32>],
    output: &[Fx32],
    dl_dout: &[Fx32],
) -> MlpGrads<Fx32> {
    let n = image.num_layers();
    let mut grads = MlpGrads {
        w: image
            .layers
            .iter()
            .map(|l| fixar_tensor::Matrix::zeros(l.rows, l.cols))
            .collect(),
        b: image
            .layers
            .iter()
            .map(|l| vec![Fx32::ZERO; l.rows])
            .collect(),
    };
    let mut delta: Vec<Fx32> = dl_dout
        .iter()
        .zip(pre[n - 1].iter().zip(output))
        .map(|(&g, (&z, &y))| g * image.output_activation.derivative(z, y))
        .collect();
    for l in (0..n).rev() {
        let layer = &image.layers[l];
        let w = mem.layer_matrix(layer);
        grads.w[l].add_outer(&delta, &inputs[l]).unwrap();
        for (gb, &d) in grads.b[l].iter_mut().zip(&delta) {
            *gb += d;
        }
        if l > 0 {
            // Transposed structural dataflow: weight rows → PE rows.
            let mut err = vec![Fx32::ZERO; layer.cols];
            core.mvm_rows(&w, &delta, 0, 1, &mut err);
            delta = err
                .iter()
                .zip(pre[l - 1].iter().zip(&inputs[l]))
                .map(|(&e, (&z, &y))| e * image.hidden_activation.derivative(z, y))
                .collect();
        }
    }
    grads
}

#[test]
fn full_hardware_training_step_is_bit_exact() {
    let cfg = MlpConfig::new(vec![5, 18, 9, 2]).with_output_activation(Activation::Tanh);
    let mut sw_net = Mlp::<Fx32>::new_random(&cfg, 77).unwrap();
    let mut mem = WeightMemory::new(256 * 1024);
    let image = mem.load_mlp(&sw_net).unwrap();
    let core = AapCore::new(16, 16);
    let mut hw_adam = AdamUnit::new(AdamConfig::default(), &image);
    let mut sw_adam = Adam::new(&sw_net, AdamConfig::default());

    for step in 0..8 {
        let x: Vec<Fx32> = (0..5)
            .map(|i| Fx32::from_f64(((i + step) as f64 * 0.31).sin()))
            .collect();
        let dl: Vec<Fx32> = (0..2)
            .map(|i| Fx32::from_f64(((i + step) as f64 * 0.17).cos() * 0.1))
            .collect();

        // Software step.
        let trace = sw_net.forward_trace(&x).unwrap();
        let mut sw_grads = MlpGrads::zeros_like(&sw_net);
        sw_net.backward(&trace, &dl, &mut sw_grads).unwrap();

        // Hardware step against the memory image.
        let (inputs, pre, output) = hw_forward(&mem, &image, &core, &x);
        assert_eq!(output, trace.output, "step {step}: forward diverged");
        let hw_grads = hw_backward(&mem, &image, &core, &inputs, &pre, &output, &dl);
        for l in 0..sw_net.num_layers() {
            assert_eq!(
                hw_grads.w[l], sw_grads.w[l],
                "step {step}: layer {l} weight gradients diverged"
            );
            assert_eq!(
                hw_grads.b[l], sw_grads.b[l],
                "step {step}: layer {l} bias gradients diverged"
            );
        }

        // Both optimizers advance their own copies.
        sw_adam.step(&mut sw_net, &sw_grads).unwrap();
        hw_adam.step(&mut mem, &image, &hw_grads).unwrap();

        // The weight-memory image equals the software network exactly.
        for (l, layer) in image.layers.iter().enumerate() {
            assert_eq!(
                &mem.layer_matrix(layer),
                sw_net.weight(l),
                "step {step}: layer {l} weights diverged after Adam"
            );
            for i in 0..layer.rows {
                assert_eq!(mem.bias(layer, i), sw_net.bias(l)[i]);
            }
        }
    }
}

#[test]
fn hardware_training_step_moves_the_q_function() {
    // Behavioural sanity: iterating the hardware step on a fixed target
    // reduces the critic-style regression error.
    let cfg = MlpConfig::new(vec![3, 12, 1]);
    let net = Mlp::<Fx32>::new_random(&cfg, 5).unwrap();
    let mut mem = WeightMemory::new(64 * 1024);
    let image = mem.load_mlp(&net).unwrap();
    let core = AapCore::new(16, 16);
    let mut adam = AdamUnit::new(
        AdamConfig {
            lr: 1e-2,
            ..AdamConfig::default()
        },
        &image,
    );

    let x: Vec<Fx32> = vec![0.2, -0.4, 0.7]
        .into_iter()
        .map(Fx32::from_f64)
        .collect();
    let target = 0.9;
    let mut first_err = None;
    let mut last_err = 0.0;
    for _ in 0..300 {
        let (inputs, pre, output) = hw_forward(&mem, &image, &core, &x);
        let err = output[0].to_f64() - target;
        first_err.get_or_insert(err.abs());
        last_err = err.abs();
        let grads = hw_backward(
            &mem,
            &image,
            &core,
            &inputs,
            &pre,
            &output,
            &[Fx32::from_f64(err)],
        );
        adam.step(&mut mem, &image, &grads).unwrap();
    }
    assert!(
        last_err < first_err.unwrap() * 0.2,
        "hardware training should converge: {} -> {last_err}",
        first_err.unwrap()
    );
}
