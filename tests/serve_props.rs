//! Serving determinism suite: the contract that makes the request-driven
//! front door auditable.
//!
//! **The contract:** every [`ActionResponse`] carries the id of the
//! snapshot that served it, and replaying the recorded observation
//! offline — `PolicySnapshot::select_action` on the snapshot with that
//! id — reproduces the action **bit-for-bit**. This must hold at every
//! shard count, every `FIXAR_WORKERS` setting (CI sweeps 1/2/8 over this
//! whole file), every batch composition the racy arrival order happens
//! to produce, across live mid-run snapshot swaps, and for QAT-frozen
//! actors serving through quantizers.
//!
//! The suite serves through real concurrent clients against the real
//! batcher threads — nothing is mocked — then replays offline and
//! compares raw bits.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use fixar_repro::prelude::*;

const STATE_DIM: usize = 3;
const ACTION_DIM: usize = 1;

fn agent(seed: u64) -> Ddpg<Fx32> {
    let cfg = DdpgConfig {
        seed,
        ..DdpgConfig::small_test()
    };
    Ddpg::new(STATE_DIM, ACTION_DIM, cfg).unwrap()
}

fn obs(i: usize) -> Vec<f64> {
    (0..STATE_DIM)
        .map(|c| ((i * STATE_DIM + c) as f64 * 0.37).sin())
        .collect()
}

/// Serves `n` requests from `clients` concurrent client threads and
/// returns every (observation, response) pair.
fn serve_all(
    server: &ActionServer<Fx32>,
    n: usize,
    clients: usize,
) -> Vec<(Vec<f64>, ActionResponse)> {
    let per_client = n / clients;
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let client = server.client();
            thread::spawn(move || {
                let mut out = Vec::with_capacity(per_client);
                // Submit in windows so real micro-batches form.
                let mut window = Vec::new();
                for i in 0..per_client {
                    let o = obs(t * 1_000_000 + i);
                    window.push((o.clone(), client.submit(&o).unwrap()));
                    if window.len() == 16 {
                        for (o, p) in window.drain(..) {
                            out.push((o, p.wait().unwrap()));
                        }
                    }
                }
                for (o, p) in window {
                    out.push((o, p.wait().unwrap()));
                }
                out
            })
        })
        .collect();
    threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect()
}

/// Replays every response offline against the snapshot with its recorded
/// id and asserts bit equality.
fn assert_replays_bit_identically(
    served: &[(Vec<f64>, ActionResponse)],
    snapshots: &HashMap<u64, PolicySnapshot<Fx32>>,
    what: &str,
) {
    for (o, resp) in served {
        let snap = snapshots
            .get(&resp.snapshot_id)
            .unwrap_or_else(|| panic!("{what}: response stamped unknown id {}", resp.snapshot_id));
        let replayed = snap.select_action(o).unwrap();
        assert_eq!(
            resp.action, replayed,
            "{what}: served action diverges from offline replay of snapshot {}",
            resp.snapshot_id
        );
    }
}

/// The headline acceptance criterion: served ≡ offline replay at shards
/// {1, 2, 4}, under whatever worker count `FIXAR_WORKERS` dictates.
#[test]
fn served_trajectory_is_bit_equal_to_offline_replay_at_every_shard_count() {
    let a = agent(7);
    let mut snapshots = HashMap::new();
    snapshots.insert(0, a.policy_snapshot(0));
    for shards in [1usize, 2, 4] {
        let server = ActionServer::start(
            a.policy_snapshot(0),
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_micros(100),
                shards,
                workers: 2,
            },
        )
        .unwrap();
        let served = serve_all(&server, 96, 3);
        let stats = server.shutdown();
        assert_eq!(served.len(), 96);
        assert_eq!(stats.requests(), 96);
        assert_eq!(stats.shards.len(), shards);
        assert_replays_bit_identically(&served, &snapshots, &format!("shards={shards}"));
    }
}

/// Local worker sweep on top of CI's environment sweep: the contract is
/// composition-independent, so explicit `workers` settings (resolved
/// through the same pool the training stack shards over) change nothing.
#[test]
fn served_actions_are_identical_across_worker_counts_and_batch_knobs() {
    let a = agent(11);
    let reference = a.policy_snapshot(0);
    let mut by_obs: HashMap<Vec<u64>, Vec<f64>> = HashMap::new();
    for (workers, max_batch, delay_us) in [
        (1usize, 1usize, 0u64),
        (2, 8, 100),
        (2, 32, 1_000),
        (4, 4, 0),
    ] {
        let server = ActionServer::start(
            a.policy_snapshot(0),
            ServeConfig {
                max_batch,
                max_delay: Duration::from_micros(delay_us),
                shards: 2,
                workers,
            },
        )
        .unwrap();
        let served = serve_all(&server, 48, 2);
        drop(server);
        for (o, resp) in served {
            // Key on raw bits of the observation.
            let key: Vec<u64> = o.iter().map(|v| v.to_bits()).collect();
            assert_eq!(resp.action, reference.select_action(&o).unwrap());
            if let Some(prev) = by_obs.insert(key, resp.action.clone()) {
                assert_eq!(
                    prev, resp.action,
                    "action changed across serving configurations"
                );
            }
        }
    }
}

/// Mid-run snapshot swaps: responses before/after the swap replay
/// against their own recorded ids, and ids never move backwards.
#[test]
fn mid_run_snapshot_swap_replays_against_the_recorded_ids() {
    let a0 = agent(3);
    let a1 = agent(4); // genuinely different weights
    let mut snapshots = HashMap::new();
    snapshots.insert(0, a0.policy_snapshot(0));
    snapshots.insert(1, a1.policy_snapshot(1));
    // Distinct policies must actually disagree somewhere, otherwise the
    // swap test is vacuous.
    let probe = obs(42);
    assert_ne!(
        snapshots[&0].select_action(&probe).unwrap(),
        snapshots[&1].select_action(&probe).unwrap()
    );

    for shards in [1usize, 2, 4] {
        let server = ActionServer::start(
            a0.policy_snapshot(0),
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_micros(200),
                shards,
                workers: 2,
            },
        )
        .unwrap();
        let publisher = server.publisher();
        let server = Arc::new(server);

        // Clients stream while the trainer swaps the snapshot mid-run.
        let serving = {
            let server = Arc::clone(&server);
            thread::spawn(move || serve_all(&server, 120, 3))
        };
        thread::sleep(Duration::from_millis(2));
        publisher.publish(a1.policy_snapshot(1)).unwrap();
        let served = serving.join().unwrap();

        assert_replays_bit_identically(&served, &snapshots, &format!("swap, shards={shards}"));
        let seen: Vec<u64> = served.iter().map(|(_, r)| r.snapshot_id).collect();
        assert!(seen.iter().all(|&id| id == 0 || id == 1));
        // The publisher's floor advanced; stale re-publication is
        // rejected, so "replay against the recorded id" stays unique.
        assert!(matches!(
            publisher.publish(a1.policy_snapshot(1)),
            Err(ServeError::StaleSnapshot { .. })
        ));
    }
}

/// QAT-frozen actors serve through frozen quantizers, and the quantized
/// responses replay bit-identically too.
#[test]
fn qat_frozen_actor_serves_and_replays_bit_identically() {
    let cfg = DdpgConfig {
        seed: 5,
        ..DdpgConfig::small_test()
    }
    .with_qat(4, 16);
    let mut a = Ddpg::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    // Calibrate every runtime, then freeze.
    let transitions: Vec<Transition> = (0..16)
        .map(|i| Transition {
            state: obs(i),
            action: vec![((i as f64) * 0.3).sin(); ACTION_DIM],
            reward: (i as f64).cos(),
            next_state: obs(i + 1),
            terminal: i % 5 == 0,
        })
        .collect();
    let refs: Vec<&Transition> = transitions.iter().collect();
    let batch = TransitionBatch::from_transitions(&refs).unwrap();
    for t in 0..8u64 {
        a.act(&obs(t as usize)).unwrap();
        a.train_minibatch(&batch).unwrap();
        a.on_timestep(t).unwrap();
    }
    assert!(a.qat_frozen(), "QAT schedule failed to freeze");

    let frozen = a.policy_snapshot(9);
    assert!(frozen.qat_frozen());
    let mut snapshots = HashMap::new();
    snapshots.insert(9, frozen.clone());

    for shards in [1usize, 2, 4] {
        let server = ActionServer::start(
            frozen.clone(),
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_micros(100),
                shards,
                workers: 2,
            },
        )
        .unwrap();
        let served = serve_all(&server, 60, 2);
        drop(server);
        assert_replays_bit_identically(&served, &snapshots, &format!("qat, shards={shards}"));
        for (_, resp) in &served {
            assert_eq!(resp.snapshot_id, 9);
        }
    }
}

/// The batcher's flush accounting is coherent: every request is served
/// exactly once, rows sum to requests, and no batch exceeds the cap.
#[test]
fn stats_account_for_every_request() {
    let a = agent(2);
    let server = ActionServer::start(
        a.policy_snapshot(0),
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(50),
            shards: 2,
            workers: 1,
        },
    )
    .unwrap();
    let served = serve_all(&server, 80, 4);
    let stats = server.shutdown();
    assert_eq!(served.len(), 80);
    assert_eq!(stats.requests(), 80);
    assert_eq!(stats.shards.iter().map(|s| s.served_rows).sum::<u64>(), 80);
    assert_eq!(
        stats.batches(),
        stats
            .shards
            .iter()
            .map(|s| s.full_flushes + s.deadline_flushes)
            .sum::<u64>()
    );
    assert!(stats.max_batch_rows() <= 8);
    for (_, resp) in &served {
        assert!(resp.batch_rows >= 1 && resp.batch_rows <= 8);
    }
}
