//! Deployment-artifact determinism suite: the differential no-float
//! harness behind `fixar-deploy`.
//!
//! **The contract:** freezing a trained QAT actor into a
//! [`PolicyArtifact`] — raw integer weights, per-point quantizer specs,
//! a trailing content hash — must change *nothing*. For every agent
//! type (DDPG and TD3), every precision-policy arm (uniform 8/16,
//! mixed, tapered per-point, adaptive-frozen), every observation, and
//! across serialization round-trips, the integer-only interpreter must
//! reproduce `PolicySnapshot::select_action` **bit-for-bit** — at every
//! `FIXAR_WORKERS` setting (CI sweeps 1/2/8 over this whole file) and
//! through the `ArtifactServer` front door.
//!
//! The no-float side of the contract is enforced twice: statically (the
//! interpreter source contains no float tokens — a unit test inside
//! `fixar-deploy`) and dynamically here — this test binary links
//! `fixar-deploy` with the `deploy-float-guard` feature, under which
//! any floating-point operation inside an armed interpreter zone
//! panics. Every `infer_raw` walk below therefore *proves* the integer
//! path executes zero float ops.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::thread;

use fixar_deploy::guard::{self, NoFloatZone};
use fixar_repro::prelude::*;
use fixar_tensor::Matrix;
use proptest::prelude::*;

const STATE_DIM: usize = 3;
const ACTION_DIM: usize = 1;
/// Activation points of the small-test actor (3 layers ⇒ 4 points).
const ACTOR_POINTS: usize = 4;

fn obs(i: usize) -> Vec<f64> {
    // Deliberately spans well past the calibrated activation ranges so
    // the quantizer clamp paths are exercised too.
    (0..STATE_DIM)
        .map(|c| ((i * STATE_DIM + c) as f64 * 0.41).sin() * (1.0 + (i % 5) as f64))
        .collect()
}

fn synthetic_batch(len: usize) -> TransitionBatch {
    let transitions: Vec<Transition> = (0..len)
        .map(|i| Transition {
            state: (0..STATE_DIM).map(|c| ((i + c) as f64).cos()).collect(),
            action: (0..ACTION_DIM)
                .map(|c| ((i * 3 + c) as f64).sin())
                .collect(),
            reward: (i as f64).sin(),
            next_state: (0..STATE_DIM).map(|c| ((i + c + 1) as f64).cos()).collect(),
            terminal: i % 7 == 0,
        })
        .collect();
    let refs: Vec<&Transition> = transitions.iter().collect();
    TransitionBatch::from_transitions(&refs).unwrap()
}

/// The precision-policy arms the freeze contract is proven over.
fn arms() -> Vec<(&'static str, PrecisionPolicy, PrecisionPolicy)> {
    let tapered = PrecisionPolicy::PerPoint {
        formats: vec![
            None,
            Some(QFormat::q(3, 9).unwrap()),
            Some(QFormat::q(2, 6).unwrap()),
            None,
        ],
        base_bits: 12,
    };
    vec![
        (
            "uniform8",
            PrecisionPolicy::Uniform { bits: 8 },
            PrecisionPolicy::Uniform { bits: 8 },
        ),
        (
            "uniform16",
            PrecisionPolicy::Uniform { bits: 16 },
            PrecisionPolicy::Uniform { bits: 16 },
        ),
        (
            "mixed",
            PrecisionPolicy::Uniform { bits: 8 },
            PrecisionPolicy::Uniform { bits: 16 },
        ),
        ("tapered", tapered, PrecisionPolicy::Uniform { bits: 12 }),
        (
            "adaptive",
            PrecisionPolicy::Adaptive {
                min_bits: 6,
                max_bits: 14,
                target_delta: 0.01,
            },
            PrecisionPolicy::Uniform { bits: 16 },
        ),
    ]
}

/// Trains a DDPG agent through its QAT freeze and snapshots it.
fn frozen_ddpg(actor: PrecisionPolicy, critic: PrecisionPolicy, seed: u64) -> PolicySnapshot<Fx32> {
    let cfg = DdpgConfig {
        seed,
        ..DdpgConfig::small_test()
    }
    .with_qat_policies(4, actor, critic);
    let mut agent = Ddpg::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    let batch = synthetic_batch(agent.config().batch_size);
    for t in 0..8u64 {
        agent.act(&obs(t as usize)).unwrap();
        agent.train_minibatch(&batch).unwrap();
        agent.on_timestep(t).unwrap();
    }
    assert!(agent.qat_frozen(), "DDPG QAT schedule must have fired");
    agent.policy_snapshot(seed)
}

/// Trains a TD3 agent through its QAT freeze and snapshots it.
fn frozen_td3(actor: PrecisionPolicy, critic: PrecisionPolicy, seed: u64) -> PolicySnapshot<Fx32> {
    let cfg = Td3Config {
        seed,
        ..Td3Config::small_test()
    }
    .with_qat_policies(2, actor, critic);
    let mut agent = Td3::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    let batch = synthetic_batch(16);
    for t in 0..6u64 {
        agent.train_minibatch(&batch).unwrap();
        agent.on_timestep(t).unwrap();
    }
    assert!(agent.qat_frozen(), "TD3 QAT schedule must have fired");
    agent.policy_snapshot(seed)
}

/// Shared fixtures for the randomized suites: one frozen snapshot +
/// artifact per (agent, arm), built once.
fn fixtures() -> &'static Vec<(String, PolicySnapshot<Fx32>, PolicyArtifact)> {
    static FIXTURES: OnceLock<Vec<(String, PolicySnapshot<Fx32>, PolicyArtifact)>> =
        OnceLock::new();
    FIXTURES.get_or_init(|| {
        let mut out = Vec::new();
        for (name, actor, critic) in arms() {
            let snap = frozen_ddpg(actor.clone(), critic.clone(), 1);
            let art = snap.export_artifact().unwrap();
            out.push((format!("ddpg/{name}"), snap, art));
            let snap = frozen_td3(actor, critic, 1);
            let art = snap.export_artifact().unwrap();
            out.push((format!("td3/{name}"), snap, art));
        }
        out
    })
}

fn raw_obs(o: &[f64]) -> Vec<i32> {
    Fx32::raw_words(&o.iter().map(|&v| Fx32::from_f64(v)).collect::<Vec<_>>())
}

// ---------------------------------------------------------------------
// Pillar 1: differential bit-equality, every agent type × every arm.
// ---------------------------------------------------------------------

#[test]
fn every_arm_replays_the_snapshot_bit_for_bit() {
    for (name, snap, art) in fixtures() {
        assert!(snap.qat_frozen(), "{name}");
        assert_eq!(art.input_dim(), STATE_DIM, "{name}");
        assert_eq!(art.output_dim(), ACTION_DIM, "{name}");
        assert_eq!(art.frac_bits(), ARTIFACT_FRAC_BITS, "{name}");
        let decoded = PolicyArtifact::decode(&art.encode()).unwrap();
        for i in 0..16 {
            let o = obs(i);
            let want = snap.select_action(&o).unwrap();
            assert_eq!(art.infer(&o).unwrap(), want, "{name} row {i}");
            assert_eq!(
                decoded.infer(&o).unwrap(),
                want,
                "{name} row {i} after round-trip"
            );
        }
    }
}

#[test]
fn legacy_uniform_qat_builder_exports_identically() {
    // The pre-policy `with_qat(delay, bits)` path (1.5× calibration
    // headroom ⇒ non-power-of-two grids ⇒ table specs) must freeze just
    // as exactly as the policy arms.
    let cfg = DdpgConfig {
        seed: 5,
        ..DdpgConfig::small_test()
    }
    .with_qat(4, 16);
    let mut agent = Ddpg::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    let batch = synthetic_batch(agent.config().batch_size);
    for t in 0..8u64 {
        agent.act(&obs(t as usize)).unwrap();
        agent.train_minibatch(&batch).unwrap();
        agent.on_timestep(t).unwrap();
    }
    assert!(agent.qat_frozen());
    let snap = agent.policy_snapshot(0);
    let art = snap.export_artifact().unwrap();
    let decoded = PolicyArtifact::decode(&art.encode()).unwrap();
    assert_eq!(decoded, art);
    for i in 0..12 {
        let o = obs(i);
        assert_eq!(art.infer(&o).unwrap(), snap.select_action(&o).unwrap());
    }
}

#[test]
fn batched_inference_matches_the_artifact_at_env_worker_counts() {
    // `select_actions_batch` under the CI `FIXAR_WORKERS` sweep must
    // agree row-for-row with the single-sample interpreter.
    let par = Parallelism::from_env_or(2);
    for (name, snap, art) in fixtures() {
        let rows = 9;
        let mut batch = Matrix::zeros(rows, STATE_DIM);
        for r in 0..rows {
            batch.row_mut(r).copy_from_slice(&obs(r));
        }
        let actions = snap.select_actions_batch(&batch, &par).unwrap();
        for r in 0..rows {
            assert_eq!(
                actions.row(r),
                art.infer(batch.row(r)).unwrap(),
                "{name} row {r} (workers {})",
                par.workers()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Pillar 2: serving through the artifact front door.
// ---------------------------------------------------------------------

#[test]
fn served_artifact_responses_replay_offline_by_content_hash() {
    let (_, snap, art) = &fixtures()[0];
    let blob = art.encode();
    let replica = ArtifactReplica::new(PolicyArtifact::decode(&blob).unwrap(), 3);
    let hash = replica.content_hash();
    assert_eq!(hash, art.content_hash());
    let server = Arc::new(ArtifactServer::start(replica, ServeConfig::default()).unwrap());
    let threads: Vec<_> = (0..3)
        .map(|t| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let client = server.client();
                (0..20)
                    .map(|i| {
                        let o = obs(t * 100 + i);
                        (o.clone(), client.request(&o).unwrap())
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut by_hash: HashMap<u64, usize> = HashMap::new();
    for t in threads {
        for (o, resp) in t.join().unwrap() {
            assert_eq!(resp.artifact_id, 3);
            *by_hash.entry(resp.content_hash).or_default() += 1;
            // The audit path: decode the recorded blob, verify its
            // hash, replay the observation — bit-equal, and equal to
            // the float-side snapshot too.
            let audit = PolicyArtifact::decode(&blob).unwrap();
            assert_eq!(audit.content_hash(), resp.content_hash);
            assert_eq!(resp.action, audit.infer(&o).unwrap());
            assert_eq!(resp.action, snap.select_action(&o).unwrap());
        }
    }
    assert_eq!(by_hash.len(), 1, "one replica ⇒ one content hash");
    assert_eq!(by_hash[&hash], 60);
}

// ---------------------------------------------------------------------
// Pillar 3: the no-float guarantee, enforced at runtime.
// ---------------------------------------------------------------------

#[test]
fn float_guard_arms_inside_zones_and_integer_path_is_clean() {
    // This test binary enables `deploy-float-guard` (workspace root
    // dev-dependency), so an armed zone turns any float op inside the
    // interpreter into a panic.
    assert!(!guard::is_active(), "guard must be idle outside a zone");
    {
        let _zone = NoFloatZone::enter();
        assert!(guard::is_active(), "guard must arm inside a zone");
    }
    assert!(!guard::is_active(), "guard must disarm on zone exit");

    // A full raw-word inference walk per arm: completing without a
    // panic proves zero floating-point operations executed.
    for (name, _, art) in fixtures() {
        for i in 0..8 {
            let raw = raw_obs(&obs(i));
            let out = art.infer_raw(&raw).unwrap();
            assert_eq!(out.len(), ACTION_DIM, "{name}");
        }
    }
}

// ---------------------------------------------------------------------
// Pillar 4: the blob is a stable, self-verifying format.
// ---------------------------------------------------------------------

#[test]
fn export_is_deterministic_and_merge_of_identical_runtimes_preserves_it() {
    // Same seed, same schedule ⇒ independently trained agents freeze to
    // byte-identical blobs with the same content hash.
    let (actor, critic) = {
        let mut a = arms();
        let (_, actor, critic) = a.remove(0);
        (actor, critic)
    };
    let snap_a = frozen_ddpg(actor.clone(), critic.clone(), 7);
    let snap_b = frozen_ddpg(actor, critic, 7);
    let blob_a = snap_a.export_artifact().unwrap().encode();
    let blob_b = snap_b.export_artifact().unwrap().encode();
    assert_eq!(blob_a, blob_b, "same training ⇒ same blob");

    // Merging an identical worker runtime (the sharded-training
    // synchronization step) must not perturb the frozen grids: the
    // artifact exported after the merge is byte-identical.
    let actor_net = snap_a.actor().clone();
    let mut runtime = QatRuntime::builder(ACTOR_POINTS)
        .uniform_bits(10)
        .build()
        .unwrap();
    for point in 0..ACTOR_POINTS {
        let mut xs: Vec<Fx32> = (0..32)
            .map(|i| Fx32::from_f64(((i + point) as f64 * 0.21).sin() * 1.4))
            .collect();
        runtime.process(point, &mut xs);
    }
    runtime.freeze().unwrap();
    let twin = runtime.clone();
    let before = PolicySnapshot::new(actor_net.clone(), runtime.clone(), 9)
        .unwrap()
        .export_artifact()
        .unwrap();
    runtime.merge_from(&twin).unwrap();
    let after = PolicySnapshot::new(actor_net, runtime, 9)
        .unwrap()
        .export_artifact()
        .unwrap();
    assert_eq!(before.encode(), after.encode());
    assert_eq!(before.content_hash(), after.content_hash());
}

// ---------------------------------------------------------------------
// Pillar 5: generated no_std source — dependency-free and bit-equal.
// ---------------------------------------------------------------------

/// Compiles each fixture's `emit_rust()` output with the host `rustc`
/// (as `#![no_std]` rlibs), links them all into one runner, executes it,
/// and proves the compiled code reproduces `infer_raw` bit-for-bit —
/// DDPG + TD3 across every precision-policy arm. The content hash baked
/// into each generated file must match the artifact's too.
#[test]
fn emitted_no_std_source_compiles_and_is_bit_equal_across_arms() {
    const N_OBS: usize = 8;
    let f = fixtures();
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("codegen_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Emit, statically gate, and compile one rlib per fixture.
    let mut extern_flags: Vec<String> = Vec::new();
    for (i, (name, _, art)) in f.iter().enumerate() {
        let src = art.emit_rust();
        verify_generated_source(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let src_path = dir.join(format!("policy{i}.rs"));
        std::fs::write(&src_path, &src).unwrap();
        let rlib = dir.join(format!("libpolicy{i}.rlib"));
        let out = std::process::Command::new("rustc")
            .arg("--edition=2021")
            .arg("--crate-type=rlib")
            .arg(format!("--crate-name=policy{i}"))
            .arg("-o")
            .arg(&rlib)
            .arg(&src_path)
            .output()
            .expect("host rustc must be invocable");
        assert!(
            out.status.success(),
            "{name}: generated source failed to compile:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        extern_flags.push(format!("policy{i}={}", rlib.display()));
    }

    // One std runner evaluating every policy on the shared observation
    // set; output lines are `hash <i> <hex>` and `act <i> <j> <words>`.
    let mut runner = String::from("fn main() {\n");
    for i in 0..f.len() {
        runner += &format!("    println!(\"hash {i} {{:016X}}\", policy{i}::CONTENT_HASH);\n");
        for j in 0..N_OBS {
            let raw = raw_obs(&obs(j));
            runner += &format!(
                "    {{\n        let o: [i32; {STATE_DIM}] = {raw:?};\n        \
                 let mut a = [0i32; {ACTION_DIM}];\n        \
                 policy{i}::infer(&o, &mut a);\n        \
                 let words: Vec<String> = a.iter().map(|w| w.to_string()).collect();\n        \
                 println!(\"act {i} {j} {{}}\", words.join(\" \"));\n    }}\n"
            );
        }
    }
    runner += "}\n";
    let runner_path = dir.join("runner.rs");
    std::fs::write(&runner_path, &runner).unwrap();
    let runner_bin = dir.join("runner");
    let mut cmd = std::process::Command::new("rustc");
    cmd.arg("--edition=2021").arg("-o").arg(&runner_bin);
    for e in &extern_flags {
        cmd.arg("--extern").arg(e);
    }
    cmd.arg(&runner_path);
    let out = cmd.output().expect("host rustc must be invocable");
    assert!(
        out.status.success(),
        "runner failed to compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run = std::process::Command::new(&runner_bin).output().unwrap();
    assert!(run.status.success(), "runner crashed");
    let stdout = String::from_utf8(run.stdout).unwrap();

    // Cross-check every line against the interpreter.
    let mut hashes_seen = 0;
    let mut acts_seen = 0;
    for line in stdout.lines() {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            "hash" => {
                let i: usize = parts[1].parse().unwrap();
                let (name, _, art) = &f[i];
                assert_eq!(
                    parts[2],
                    format!("{:016X}", art.content_hash()),
                    "{name}: baked-in CONTENT_HASH disagrees"
                );
                hashes_seen += 1;
            }
            "act" => {
                let i: usize = parts[1].parse().unwrap();
                let j: usize = parts[2].parse().unwrap();
                let got: Vec<i32> = parts[3..].iter().map(|w| w.parse().unwrap()).collect();
                let (name, _, art) = &f[i];
                let want = art.infer_raw(&raw_obs(&obs(j))).unwrap();
                assert_eq!(got, want, "{name} obs {j}: compiled codegen diverged");
                acts_seen += 1;
            }
            other => panic!("unexpected runner output {other:?}"),
        }
    }
    assert_eq!(hashes_seen, f.len());
    assert_eq!(acts_seen, f.len() * N_OBS);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Pillar 6: compressed threshold tables are exact and smaller.
// ---------------------------------------------------------------------

#[test]
fn compressed_and_uncompressed_encodings_decode_identically() {
    for (name, _, art) in fixtures() {
        let packed = PolicyArtifact::decode(&art.encode()).unwrap();
        let raw = PolicyArtifact::decode(&art.encode_uncompressed()).unwrap();
        assert_eq!(
            packed, raw,
            "{name}: wire form must not change the artifact"
        );
        assert_eq!(&packed, art, "{name}");
        for i in 0..6 {
            let o = raw_obs(&obs(i));
            assert_eq!(
                packed.infer_raw(&o).unwrap(),
                art.infer_raw(&o).unwrap(),
                "{name} obs {i}"
            );
        }
    }
}

#[test]
fn table_heavy_blobs_shrink_measurably() {
    // The 16-bit arms carry 65 535-entry threshold tables; packed-delta
    // compression must cut the blob by well over half.
    let mut saw_table_arm = false;
    for (name, _, art) in fixtures() {
        let stats = art.blob_stats();
        assert!(stats.bytes <= stats.bytes_uncompressed, "{name}");
        assert!(stats.tables_compressed <= stats.table_points, "{name}");
        if name.ends_with("uniform16") {
            saw_table_arm = true;
            assert!(stats.table_points > 0, "{name} should carry tables");
            assert_eq!(
                stats.tables_compressed, stats.table_points,
                "{name}: every big table should pack"
            );
            assert!(
                stats.bytes * 2 < stats.bytes_uncompressed,
                "{name}: expected >2x shrink, got {} -> {}",
                stats.bytes_uncompressed,
                stats.bytes
            );
        }
    }
    assert!(saw_table_arm);
}

// ---------------------------------------------------------------------
// Pillar 7: the O(1) affine quantizer fast path is bit-equal to the
// threshold search — proven from outside the crate by hand-assembling
// raw table blobs (tag 2) and replaying them against a partition_point
// oracle, for both the affine arm and the guaranteed search fallback.
// ---------------------------------------------------------------------

/// Assembles a v2 blob for a 1×1 identity policy whose output point is a
/// raw (tag 2) threshold table, byte-by-byte per the wire format, with
/// the trailing FNV-1a 64 checksum. The weight is exactly 1.0 on the
/// grid, so the pre-quantizer word equals the input word and
/// `infer_raw([r])[0]` is precisely `dequant[code(r)]`.
fn table_blob(thresholds: &[i64], dequant: &[i32]) -> Vec<u8> {
    assert_eq!(dequant.len(), thresholds.len() + 1);
    let mut out = Vec::new();
    out.extend_from_slice(b"FXDA");
    out.extend_from_slice(&2u32.to_le_bytes()); // version
    out.extend_from_slice(&ARTIFACT_FRAC_BITS.to_le_bytes());
    out.extend_from_slice(&1u32.to_le_bytes()); // n_layers
    out.extend_from_slice(&1u32.to_le_bytes()); // input dim
    out.extend_from_slice(&1u32.to_le_bytes()); // output dim
    out.push(0); // hidden act: identity
    out.push(0); // output act: identity
    out.extend_from_slice(&(1i32 << ARTIFACT_FRAC_BITS).to_le_bytes()); // weight 1.0
    out.extend_from_slice(&0i32.to_le_bytes()); // bias 0
    out.extend_from_slice(&2u32.to_le_bytes()); // num points
    out.push(0); // spec 0: pass-through
    out.push(2); // spec 1: raw table
    out.extend_from_slice(&(thresholds.len() as u32).to_le_bytes());
    for &t in thresholds {
        out.extend_from_slice(&t.to_le_bytes());
    }
    out.extend_from_slice(&(dequant.len() as u32).to_le_bytes());
    for &d in dequant {
        out.extend_from_slice(&d.to_le_bytes());
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &out {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    out.extend_from_slice(&h.to_le_bytes());
    out
}

/// Keys that pin down a table's step function: every interval edge
/// (`t`, `t - 1`) plus the domain rails and a few interior probes.
fn probe_keys(thresholds: &[i64]) -> Vec<i32> {
    let mut keys = vec![i32::MIN, -1, 0, 1, i32::MAX];
    for &t in thresholds {
        for k in [t.saturating_sub(1), t, t.saturating_add(1)] {
            if let Ok(k32) = i32::try_from(k) {
                keys.push(k32);
            }
        }
    }
    keys
}

/// Replays a decoded table artifact against the `partition_point`
/// definition at every probe key, inside an armed no-float zone.
fn assert_table_matches_oracle(
    art: &PolicyArtifact,
    thresholds: &[i64],
    dequant: &[i32],
) -> Result<(), proptest::test_runner::TestCaseError> {
    for key in probe_keys(thresholds) {
        let want = dequant[thresholds.partition_point(|&t| t <= key as i64)];
        let got = art.infer_raw(&[key]).unwrap();
        prop_assert_eq!(got[0], want, "key {}", key);
    }
    Ok(())
}

#[test]
fn affine_and_fallback_table_codegen_pass_the_differential_gate() {
    // Fixed-case codegen check for both quantizer arms: a uniform ramp
    // (affine fast path — no threshold array in the source) and a bent
    // ramp (search fallback — threshold array present), each compiled
    // with the host rustc and replayed bit-for-bit against infer_raw.
    let uniform: Vec<i64> = (0..64).map(|k| -2000 + k * 131).collect();
    let mut bent = uniform.clone();
    bent[31] += 7;
    let dequant: Vec<i32> = (0..65).map(|c| -4000 + c * 125).collect();

    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("affine_codegen_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    for (name, thresholds, want_search) in [("affine", &uniform, false), ("fallback", &bent, true)]
    {
        let art = PolicyArtifact::decode(&table_blob(thresholds, &dequant)).unwrap();
        let src = art.emit_rust();
        verify_generated_source(&src).unwrap();
        let has_threshold_static = src.contains("static T1");
        assert_eq!(
            has_threshold_static, want_search,
            "{name}: emitted arm does not match the table's affine fit"
        );

        let src_path = dir.join(format!("{name}.rs"));
        let mut runner = String::new();
        for key in probe_keys(thresholds)
            .iter()
            .step_by(7)
            .chain([&i32::MIN, &i32::MAX])
        {
            runner += &format!(
                "    {{ let mut a = [0i32; 1]; infer(&[{key}], &mut a); \
                 println!(\"{key} {{}}\", a[0]); }}\n"
            );
        }
        // Strip the crate-level attribute and doc comments so the file
        // can be `include!`d into a std runner.
        let included: String = src
            .lines()
            .filter(|l| !l.starts_with("//!") && !l.starts_with("#![no_std]"))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&src_path, included).unwrap();
        let main_path = dir.join(format!("{name}_main.rs"));
        std::fs::write(
            &main_path,
            format!(
                "include!(\"{}\");\nfn main() {{\n{runner}}}\n",
                src_path.display()
            ),
        )
        .unwrap();
        let bin = dir.join(name);
        let out = std::process::Command::new("rustc")
            .arg("--edition=2021")
            .arg("-o")
            .arg(&bin)
            .arg(&main_path)
            .output()
            .expect("host rustc must be invocable");
        assert!(
            out.status.success(),
            "{name}: generated source failed to compile:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let run = std::process::Command::new(&bin).output().unwrap();
        assert!(run.status.success(), "{name}: runner crashed");
        for line in String::from_utf8(run.stdout).unwrap().lines() {
            let mut parts = line.split_whitespace();
            let key: i32 = parts.next().unwrap().parse().unwrap();
            let got: i32 = parts.next().unwrap().parse().unwrap();
            assert_eq!(
                got,
                art.infer_raw(&[key]).unwrap()[0],
                "{name}: compiled codegen diverged at key {key}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pillar 7a: random uniform-step tables decode onto the affine fast
    /// path and replay the `partition_point` definition exactly at every
    /// interval edge, the rails, and the sentinel-saturated top codes.
    #[test]
    fn affine_fast_path_tables_match_the_search_definition(
        base in -100_000i64..100_000,
        step in 1i64..5_000,
        len in 1usize..200,
        sentinel_tail in 0usize..4,
    ) {
        let mut thresholds: Vec<i64> =
            (0..len as i64).map(|k| base + k * step).collect();
        thresholds.extend(std::iter::repeat_n(i64::MAX, sentinel_tail));
        let dequant: Vec<i32> = (0..=thresholds.len() as i64)
            .map(|c| (c * 977 - 40_000) as i32)
            .collect();
        let art = PolicyArtifact::decode(&table_blob(&thresholds, &dequant)).unwrap();
        // A uniform integer ramp always fits, so this arm genuinely
        // exercises the multiply-shift, not the fallback.
        prop_assert_eq!(art.blob_stats().tables_affine, 1);
        assert_table_matches_oracle(&art, &thresholds, &dequant)?;
    }

    /// Pillar 7b: unsorted tables can never fit the affine form (the fit
    /// requires a sorted ramp), so they are guaranteed onto the search
    /// fallback — which must still reproduce `partition_point`, whose
    /// semantics on unsorted input are exactly "some valid binary-search
    /// partition", the same one the interpreter uses.
    #[test]
    fn non_affine_tables_fall_back_to_the_search(
        base in -50_000i64..50_000,
        step in 10i64..2_000,
        len in 4usize..100,
        swap in 1usize..99,
    ) {
        let mut thresholds: Vec<i64> =
            (0..len as i64).map(|k| base + k * step).collect();
        // Swap an adjacent pair strictly out of order.
        let i = swap % (len - 1);
        thresholds.swap(i, i + 1);
        let dequant: Vec<i32> = (0..=len as i64).map(|c| (c * 613) as i32).collect();
        let art = PolicyArtifact::decode(&table_blob(&thresholds, &dequant)).unwrap();
        prop_assert_eq!(
            art.blob_stats().tables_affine, 0,
            "unsorted table must not fit the affine form"
        );
        assert_table_matches_oracle(&art, &thresholds, &dequant)?;
    }

    /// Randomized pillar 1: arbitrary observations (including values far
    /// outside the calibrated ranges) replay bit-for-bit on every arm.
    #[test]
    fn random_observations_replay_bit_for_bit(
        seed in 0u64..10_000,
        scale in 0.1f64..4.0,
    ) {
        let o: Vec<f64> = (0..STATE_DIM)
            .map(|c| ((seed as f64 + c as f64) * 0.7).sin() * scale)
            .collect();
        for (name, snap, art) in fixtures() {
            let want = snap.select_action(&o).unwrap();
            prop_assert_eq!(art.infer(&o).unwrap(), want.clone(), "{}", name);
            // And the raw integer path agrees with the f64-edge path.
            let raw_out = art.infer_raw(&raw_obs(&o)).unwrap();
            let via_f64: Vec<f64> = art.infer(&o).unwrap();
            let raw_as_f64: Vec<f64> = Fx32::from_raw_words(&raw_out)
                .iter()
                .map(|x| x.to_f64())
                .collect();
            prop_assert_eq!(raw_as_f64, via_f64, "{}", name);
        }
    }

    /// Randomized pillar 4a: encode → decode → re-encode is
    /// byte-identical, and the content hash survives the round-trip.
    #[test]
    fn round_trip_reencode_is_byte_identical(pick in 0usize..10) {
        let f = fixtures();
        let (name, _, art) = &f[pick % f.len()];
        let blob = art.encode();
        let decoded = PolicyArtifact::decode(&blob).unwrap();
        prop_assert_eq!(&decoded, art, "{}", name);
        prop_assert_eq!(decoded.encode(), blob, "{}", name);
        prop_assert_eq!(decoded.content_hash(), art.content_hash(), "{}", name);
    }

    /// Randomized pillar 6: for arbitrary calibrated ranges (non-pow2
    /// grids ⇒ threshold tables), the compressed wire form decodes to
    /// an artifact whose every threshold word is identical — structural
    /// equality, byte-identical re-encode, and identical quantization of
    /// raw words across the grid, including the saturating rails.
    #[test]
    fn random_range_quantizer_tables_roundtrip_exactly(
        min in -8.0f64..-0.01,
        span in 0.02f64..16.0,
        bits in 2u32..13,
    ) {
        let q = AffineQuantizer::from_range(min, min + span, bits).unwrap();
        let one = Fx32::ONE.raw();
        let art = PolicyArtifact::from_parts(
            &[1, 1],
            ActKind::Identity,
            ActKind::Identity,
            vec![vec![one]],
            vec![vec![0]],
            &[None, Some(&q)],
        )
        .unwrap();
        let decoded = PolicyArtifact::decode(&art.encode()).unwrap();
        prop_assert_eq!(&decoded, &art);
        prop_assert_eq!(decoded.encode(), art.encode());
        for r in [i32::MIN, -(1 << 24), -12345, 0, 999, 1 << 22, i32::MAX] {
            prop_assert_eq!(
                decoded.infer_raw(&[r]).unwrap(),
                art.infer_raw(&[r]).unwrap(),
                "raw={}", r
            );
        }
    }

    /// Randomized pillar 4b: truncations and bit flips anywhere in the
    /// blob decode to typed errors — never panics, never a silently
    /// wrong artifact.
    #[test]
    fn corrupted_blobs_decode_to_typed_errors(
        frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        // The 8-bit arm keeps the blob small enough to probe densely.
        let (_, _, art) = &fixtures()[0];
        let blob = art.encode().to_vec();

        let cut = ((blob.len() - 1) as f64 * frac) as usize;
        match PolicyArtifact::decode(&blob[..cut]) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "truncated blob at {} decoded", cut),
        }
        if cut < 12 {
            // Inside magic+version: the error must be the structured
            // truncation/magic kind, not a checksum afterthought.
            prop_assert!(matches!(
                PolicyArtifact::decode(&blob[..cut]),
                Err(DeployError::Truncated { .. }) | Err(DeployError::BadMagic)
            ));
        }

        let pos = cut.min(blob.len() - 1);
        let mut flipped = blob.clone();
        flipped[pos] ^= 1 << flip_bit;
        match PolicyArtifact::decode(&flipped) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "flipped bit {} at byte {} decoded", flip_bit, pos),
        }
    }
}
