//! Deployment-artifact determinism suite: the differential no-float
//! harness behind `fixar-deploy`.
//!
//! **The contract:** freezing a trained QAT actor into a
//! [`PolicyArtifact`] — raw integer weights, per-point quantizer specs,
//! a trailing content hash — must change *nothing*. For every agent
//! type (DDPG and TD3), every precision-policy arm (uniform 8/16,
//! mixed, tapered per-point, adaptive-frozen), every observation, and
//! across serialization round-trips, the integer-only interpreter must
//! reproduce `PolicySnapshot::select_action` **bit-for-bit** — at every
//! `FIXAR_WORKERS` setting (CI sweeps 1/2/8 over this whole file) and
//! through the `ArtifactServer` front door.
//!
//! The no-float side of the contract is enforced twice: statically (the
//! interpreter source contains no float tokens — a unit test inside
//! `fixar-deploy`) and dynamically here — this test binary links
//! `fixar-deploy` with the `deploy-float-guard` feature, under which
//! any floating-point operation inside an armed interpreter zone
//! panics. Every `infer_raw` walk below therefore *proves* the integer
//! path executes zero float ops.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::thread;

use fixar_deploy::guard::{self, NoFloatZone};
use fixar_repro::prelude::*;
use fixar_tensor::Matrix;
use proptest::prelude::*;

const STATE_DIM: usize = 3;
const ACTION_DIM: usize = 1;
/// Activation points of the small-test actor (3 layers ⇒ 4 points).
const ACTOR_POINTS: usize = 4;

fn obs(i: usize) -> Vec<f64> {
    // Deliberately spans well past the calibrated activation ranges so
    // the quantizer clamp paths are exercised too.
    (0..STATE_DIM)
        .map(|c| ((i * STATE_DIM + c) as f64 * 0.41).sin() * (1.0 + (i % 5) as f64))
        .collect()
}

fn synthetic_batch(len: usize) -> TransitionBatch {
    let transitions: Vec<Transition> = (0..len)
        .map(|i| Transition {
            state: (0..STATE_DIM).map(|c| ((i + c) as f64).cos()).collect(),
            action: (0..ACTION_DIM)
                .map(|c| ((i * 3 + c) as f64).sin())
                .collect(),
            reward: (i as f64).sin(),
            next_state: (0..STATE_DIM).map(|c| ((i + c + 1) as f64).cos()).collect(),
            terminal: i % 7 == 0,
        })
        .collect();
    let refs: Vec<&Transition> = transitions.iter().collect();
    TransitionBatch::from_transitions(&refs).unwrap()
}

/// The precision-policy arms the freeze contract is proven over.
fn arms() -> Vec<(&'static str, PrecisionPolicy, PrecisionPolicy)> {
    let tapered = PrecisionPolicy::PerPoint {
        formats: vec![
            None,
            Some(QFormat::q(3, 9).unwrap()),
            Some(QFormat::q(2, 6).unwrap()),
            None,
        ],
        base_bits: 12,
    };
    vec![
        (
            "uniform8",
            PrecisionPolicy::Uniform { bits: 8 },
            PrecisionPolicy::Uniform { bits: 8 },
        ),
        (
            "uniform16",
            PrecisionPolicy::Uniform { bits: 16 },
            PrecisionPolicy::Uniform { bits: 16 },
        ),
        (
            "mixed",
            PrecisionPolicy::Uniform { bits: 8 },
            PrecisionPolicy::Uniform { bits: 16 },
        ),
        ("tapered", tapered, PrecisionPolicy::Uniform { bits: 12 }),
        (
            "adaptive",
            PrecisionPolicy::Adaptive {
                min_bits: 6,
                max_bits: 14,
                target_delta: 0.01,
            },
            PrecisionPolicy::Uniform { bits: 16 },
        ),
    ]
}

/// Trains a DDPG agent through its QAT freeze and snapshots it.
fn frozen_ddpg(actor: PrecisionPolicy, critic: PrecisionPolicy, seed: u64) -> PolicySnapshot<Fx32> {
    let cfg = DdpgConfig {
        seed,
        ..DdpgConfig::small_test()
    }
    .with_qat_policies(4, actor, critic);
    let mut agent = Ddpg::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    let batch = synthetic_batch(agent.config().batch_size);
    for t in 0..8u64 {
        agent.act(&obs(t as usize)).unwrap();
        agent.train_minibatch(&batch).unwrap();
        agent.on_timestep(t).unwrap();
    }
    assert!(agent.qat_frozen(), "DDPG QAT schedule must have fired");
    agent.policy_snapshot(seed)
}

/// Trains a TD3 agent through its QAT freeze and snapshots it.
fn frozen_td3(actor: PrecisionPolicy, critic: PrecisionPolicy, seed: u64) -> PolicySnapshot<Fx32> {
    let cfg = Td3Config {
        seed,
        ..Td3Config::small_test()
    }
    .with_qat_policies(2, actor, critic);
    let mut agent = Td3::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    let batch = synthetic_batch(16);
    for t in 0..6u64 {
        agent.train_minibatch(&batch).unwrap();
        agent.on_timestep(t).unwrap();
    }
    assert!(agent.qat_frozen(), "TD3 QAT schedule must have fired");
    agent.policy_snapshot(seed)
}

/// Shared fixtures for the randomized suites: one frozen snapshot +
/// artifact per (agent, arm), built once.
fn fixtures() -> &'static Vec<(String, PolicySnapshot<Fx32>, PolicyArtifact)> {
    static FIXTURES: OnceLock<Vec<(String, PolicySnapshot<Fx32>, PolicyArtifact)>> =
        OnceLock::new();
    FIXTURES.get_or_init(|| {
        let mut out = Vec::new();
        for (name, actor, critic) in arms() {
            let snap = frozen_ddpg(actor.clone(), critic.clone(), 1);
            let art = snap.export_artifact().unwrap();
            out.push((format!("ddpg/{name}"), snap, art));
            let snap = frozen_td3(actor, critic, 1);
            let art = snap.export_artifact().unwrap();
            out.push((format!("td3/{name}"), snap, art));
        }
        out
    })
}

fn raw_obs(o: &[f64]) -> Vec<i32> {
    Fx32::raw_words(&o.iter().map(|&v| Fx32::from_f64(v)).collect::<Vec<_>>())
}

// ---------------------------------------------------------------------
// Pillar 1: differential bit-equality, every agent type × every arm.
// ---------------------------------------------------------------------

#[test]
fn every_arm_replays_the_snapshot_bit_for_bit() {
    for (name, snap, art) in fixtures() {
        assert!(snap.qat_frozen(), "{name}");
        assert_eq!(art.input_dim(), STATE_DIM, "{name}");
        assert_eq!(art.output_dim(), ACTION_DIM, "{name}");
        assert_eq!(art.frac_bits(), ARTIFACT_FRAC_BITS, "{name}");
        let decoded = PolicyArtifact::decode(&art.encode()).unwrap();
        for i in 0..16 {
            let o = obs(i);
            let want = snap.select_action(&o).unwrap();
            assert_eq!(art.infer(&o).unwrap(), want, "{name} row {i}");
            assert_eq!(
                decoded.infer(&o).unwrap(),
                want,
                "{name} row {i} after round-trip"
            );
        }
    }
}

#[test]
fn legacy_uniform_qat_builder_exports_identically() {
    // The pre-policy `with_qat(delay, bits)` path (1.5× calibration
    // headroom ⇒ non-power-of-two grids ⇒ table specs) must freeze just
    // as exactly as the policy arms.
    let cfg = DdpgConfig {
        seed: 5,
        ..DdpgConfig::small_test()
    }
    .with_qat(4, 16);
    let mut agent = Ddpg::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    let batch = synthetic_batch(agent.config().batch_size);
    for t in 0..8u64 {
        agent.act(&obs(t as usize)).unwrap();
        agent.train_minibatch(&batch).unwrap();
        agent.on_timestep(t).unwrap();
    }
    assert!(agent.qat_frozen());
    let snap = agent.policy_snapshot(0);
    let art = snap.export_artifact().unwrap();
    let decoded = PolicyArtifact::decode(&art.encode()).unwrap();
    assert_eq!(decoded, art);
    for i in 0..12 {
        let o = obs(i);
        assert_eq!(art.infer(&o).unwrap(), snap.select_action(&o).unwrap());
    }
}

#[test]
fn batched_inference_matches_the_artifact_at_env_worker_counts() {
    // `select_actions_batch` under the CI `FIXAR_WORKERS` sweep must
    // agree row-for-row with the single-sample interpreter.
    let par = Parallelism::from_env_or(2);
    for (name, snap, art) in fixtures() {
        let rows = 9;
        let mut batch = Matrix::zeros(rows, STATE_DIM);
        for r in 0..rows {
            batch.row_mut(r).copy_from_slice(&obs(r));
        }
        let actions = snap.select_actions_batch(&batch, &par).unwrap();
        for r in 0..rows {
            assert_eq!(
                actions.row(r),
                art.infer(batch.row(r)).unwrap(),
                "{name} row {r} (workers {})",
                par.workers()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Pillar 2: serving through the artifact front door.
// ---------------------------------------------------------------------

#[test]
fn served_artifact_responses_replay_offline_by_content_hash() {
    let (_, snap, art) = &fixtures()[0];
    let blob = art.encode();
    let replica = ArtifactReplica::new(PolicyArtifact::decode(&blob).unwrap(), 3);
    let hash = replica.content_hash();
    assert_eq!(hash, art.content_hash());
    let server = Arc::new(ArtifactServer::start(replica, ServeConfig::default()).unwrap());
    let threads: Vec<_> = (0..3)
        .map(|t| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let client = server.client();
                (0..20)
                    .map(|i| {
                        let o = obs(t * 100 + i);
                        (o.clone(), client.request(&o).unwrap())
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut by_hash: HashMap<u64, usize> = HashMap::new();
    for t in threads {
        for (o, resp) in t.join().unwrap() {
            assert_eq!(resp.artifact_id, 3);
            *by_hash.entry(resp.content_hash).or_default() += 1;
            // The audit path: decode the recorded blob, verify its
            // hash, replay the observation — bit-equal, and equal to
            // the float-side snapshot too.
            let audit = PolicyArtifact::decode(&blob).unwrap();
            assert_eq!(audit.content_hash(), resp.content_hash);
            assert_eq!(resp.action, audit.infer(&o).unwrap());
            assert_eq!(resp.action, snap.select_action(&o).unwrap());
        }
    }
    assert_eq!(by_hash.len(), 1, "one replica ⇒ one content hash");
    assert_eq!(by_hash[&hash], 60);
}

// ---------------------------------------------------------------------
// Pillar 3: the no-float guarantee, enforced at runtime.
// ---------------------------------------------------------------------

#[test]
fn float_guard_arms_inside_zones_and_integer_path_is_clean() {
    // This test binary enables `deploy-float-guard` (workspace root
    // dev-dependency), so an armed zone turns any float op inside the
    // interpreter into a panic.
    assert!(!guard::is_active(), "guard must be idle outside a zone");
    {
        let _zone = NoFloatZone::enter();
        assert!(guard::is_active(), "guard must arm inside a zone");
    }
    assert!(!guard::is_active(), "guard must disarm on zone exit");

    // A full raw-word inference walk per arm: completing without a
    // panic proves zero floating-point operations executed.
    for (name, _, art) in fixtures() {
        for i in 0..8 {
            let raw = raw_obs(&obs(i));
            let out = art.infer_raw(&raw).unwrap();
            assert_eq!(out.len(), ACTION_DIM, "{name}");
        }
    }
}

// ---------------------------------------------------------------------
// Pillar 4: the blob is a stable, self-verifying format.
// ---------------------------------------------------------------------

#[test]
fn export_is_deterministic_and_merge_of_identical_runtimes_preserves_it() {
    // Same seed, same schedule ⇒ independently trained agents freeze to
    // byte-identical blobs with the same content hash.
    let (actor, critic) = {
        let mut a = arms();
        let (_, actor, critic) = a.remove(0);
        (actor, critic)
    };
    let snap_a = frozen_ddpg(actor.clone(), critic.clone(), 7);
    let snap_b = frozen_ddpg(actor, critic, 7);
    let blob_a = snap_a.export_artifact().unwrap().encode();
    let blob_b = snap_b.export_artifact().unwrap().encode();
    assert_eq!(blob_a, blob_b, "same training ⇒ same blob");

    // Merging an identical worker runtime (the sharded-training
    // synchronization step) must not perturb the frozen grids: the
    // artifact exported after the merge is byte-identical.
    let actor_net = snap_a.actor().clone();
    let mut runtime = QatRuntime::builder(ACTOR_POINTS)
        .uniform_bits(10)
        .build()
        .unwrap();
    for point in 0..ACTOR_POINTS {
        let mut xs: Vec<Fx32> = (0..32)
            .map(|i| Fx32::from_f64(((i + point) as f64 * 0.21).sin() * 1.4))
            .collect();
        runtime.process(point, &mut xs);
    }
    runtime.freeze().unwrap();
    let twin = runtime.clone();
    let before = PolicySnapshot::new(actor_net.clone(), runtime.clone(), 9)
        .unwrap()
        .export_artifact()
        .unwrap();
    runtime.merge_from(&twin).unwrap();
    let after = PolicySnapshot::new(actor_net, runtime, 9)
        .unwrap()
        .export_artifact()
        .unwrap();
    assert_eq!(before.encode(), after.encode());
    assert_eq!(before.content_hash(), after.content_hash());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized pillar 1: arbitrary observations (including values far
    /// outside the calibrated ranges) replay bit-for-bit on every arm.
    #[test]
    fn random_observations_replay_bit_for_bit(
        seed in 0u64..10_000,
        scale in 0.1f64..4.0,
    ) {
        let o: Vec<f64> = (0..STATE_DIM)
            .map(|c| ((seed as f64 + c as f64) * 0.7).sin() * scale)
            .collect();
        for (name, snap, art) in fixtures() {
            let want = snap.select_action(&o).unwrap();
            prop_assert_eq!(art.infer(&o).unwrap(), want.clone(), "{}", name);
            // And the raw integer path agrees with the f64-edge path.
            let raw_out = art.infer_raw(&raw_obs(&o)).unwrap();
            let via_f64: Vec<f64> = art.infer(&o).unwrap();
            let raw_as_f64: Vec<f64> = Fx32::from_raw_words(&raw_out)
                .iter()
                .map(|x| x.to_f64())
                .collect();
            prop_assert_eq!(raw_as_f64, via_f64, "{}", name);
        }
    }

    /// Randomized pillar 4a: encode → decode → re-encode is
    /// byte-identical, and the content hash survives the round-trip.
    #[test]
    fn round_trip_reencode_is_byte_identical(pick in 0usize..10) {
        let f = fixtures();
        let (name, _, art) = &f[pick % f.len()];
        let blob = art.encode();
        let decoded = PolicyArtifact::decode(&blob).unwrap();
        prop_assert_eq!(&decoded, art, "{}", name);
        prop_assert_eq!(decoded.encode(), blob, "{}", name);
        prop_assert_eq!(decoded.content_hash(), art.content_hash(), "{}", name);
    }

    /// Randomized pillar 4b: truncations and bit flips anywhere in the
    /// blob decode to typed errors — never panics, never a silently
    /// wrong artifact.
    #[test]
    fn corrupted_blobs_decode_to_typed_errors(
        frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        // The 8-bit arm keeps the blob small enough to probe densely.
        let (_, _, art) = &fixtures()[0];
        let blob = art.encode().to_vec();

        let cut = ((blob.len() - 1) as f64 * frac) as usize;
        match PolicyArtifact::decode(&blob[..cut]) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "truncated blob at {} decoded", cut),
        }
        if cut < 12 {
            // Inside magic+version: the error must be the structured
            // truncation/magic kind, not a checksum afterthought.
            prop_assert!(matches!(
                PolicyArtifact::decode(&blob[..cut]),
                Err(DeployError::Truncated { .. }) | Err(DeployError::BadMagic)
            ));
        }

        let pos = cut.min(blob.len() - 1);
        let mut flipped = blob.clone();
        flipped[pos] ^= 1 << flip_bit;
        match PolicyArtifact::decode(&flipped) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "flipped bit {} at byte {} decoded", flip_bit, pos),
        }
    }
}
