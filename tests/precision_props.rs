//! Precision-policy suite: the contracts that make per-layer precision
//! a safe runtime axis.
//!
//! **The pillars:**
//!
//! 1. A `Uniform` precision policy is the redesigned spelling of the
//!    legacy global-bits QAT schedule — whole training runs (scalar and
//!    fleet) reproduce the legacy path **bit-for-bit**, weights
//!    included, at every `FIXAR_WORKERS` setting (CI sweeps 1/2/8 over
//!    this file).
//! 2. A mixed-precision agent (8-bit actor, 16-bit critics) trains,
//!    freezes, and serves through the real [`ActionServer`]; every
//!    served action replays bit-identically offline against the frozen
//!    snapshot, whose per-point formats are inspectable.
//! 3. Cross-worker range merging ([`QatRuntime::merge_from`]) rejects
//!    divergent precision plans with a typed [`PrecisionError`] instead
//!    of silently freezing one runtime with another plan's statistics.

use std::thread;
use std::time::Duration;

use fixar_repro::prelude::*;

const STATE_DIM: usize = 3;
const ACTION_DIM: usize = 1;

fn obs(i: usize) -> Vec<f64> {
    (0..STATE_DIM)
        .map(|c| ((i * STATE_DIM + c) as f64 * 0.41).sin())
        .collect()
}

fn toy_batch(n: usize) -> Vec<Transition> {
    (0..n)
        .map(|i| Transition {
            state: obs(i),
            action: vec![((i as f64) * 0.29).sin(); ACTION_DIM],
            reward: (i as f64).cos(),
            next_state: obs(i + 1),
            terminal: i % 5 == 0,
        })
        .collect()
}

/// Legacy global-bits schedule and its `Uniform`-policy respelling.
fn qat_config_pair(delay: u64, bits: u32) -> (DdpgConfig, DdpgConfig) {
    let base = DdpgConfig {
        seed: 17,
        ..DdpgConfig::small_test()
    };
    let legacy = base.clone().with_qat(delay, bits);
    let policy = base.with_qat_policies(
        delay,
        PrecisionPolicy::Uniform { bits },
        PrecisionPolicy::Uniform { bits },
    );
    (legacy, policy)
}

/// Pillar 1, scalar path: a full `Trainer` run under the `Uniform`
/// policy reproduces the legacy run bit-for-bit — reward curve, QAT
/// switch step, and every actor/critic weight.
#[test]
fn uniform_policy_trainer_run_reproduces_legacy_bit_for_bit() {
    let (legacy_cfg, policy_cfg) = qat_config_pair(30, 16);
    let run = |cfg: DdpgConfig| {
        let mut t = Trainer::<Fx32>::new(
            EnvKind::Pendulum.make(cfg.seed),
            EnvKind::Pendulum.make(cfg.seed.wrapping_add(1)),
            cfg,
        )
        .unwrap();
        let report = t.run(120, 60, 1).unwrap();
        (report, t)
    };
    let (legacy_report, legacy) = run(legacy_cfg);
    let (policy_report, policy) = run(policy_cfg);

    assert!(
        legacy_report.qat_switch_step.is_some(),
        "QAT never fired; the run exercises only the pre-switch path"
    );
    assert_eq!(legacy_report.qat_switch_step, policy_report.qat_switch_step);
    let bits = |curve: &[EvalPoint]| -> Vec<(u64, u64)> {
        curve
            .iter()
            .map(|p| (p.step, p.avg_reward.to_bits()))
            .collect()
    };
    assert_eq!(
        bits(&legacy_report.curve),
        bits(&policy_report.curve),
        "uniform policy diverged from legacy on the eval curve"
    );
    assert_eq!(legacy.agent().actor(), policy.agent().actor());
    assert_eq!(legacy.agent().critic(), policy.agent().critic());
}

/// Pillar 1, fleet path: `VecTrainer` runs at fleet sizes {1, 4} under
/// the `Uniform` policy reproduce legacy weights bit-for-bit (under
/// whatever worker count `FIXAR_WORKERS` dictates).
#[test]
fn uniform_policy_fleet_runs_reproduce_legacy_at_every_fleet_size() {
    for fleet in [1usize, 4] {
        let (legacy_cfg, policy_cfg) = qat_config_pair(24, 16);
        let run = |cfg: DdpgConfig| {
            let mut t = VecTrainer::<Fx32>::new(
                EnvPool::from_kind(EnvKind::Pendulum, fleet, cfg.seed),
                EnvKind::Pendulum.make(cfg.seed.wrapping_add(1)),
                cfg,
            )
            .unwrap();
            t.run(96, 48, 1).unwrap();
            t
        };
        let legacy = run(legacy_cfg);
        let policy = run(policy_cfg);
        assert_eq!(
            legacy.agent().actor(),
            policy.agent().actor(),
            "fleet={fleet}: actor diverged"
        );
        assert_eq!(
            legacy.agent().critic(),
            policy.agent().critic(),
            "fleet={fleet}: critic diverged"
        );
    }
}

/// Serves `n` requests from 2 concurrent clients and replays every
/// response offline against `snap`, asserting bit equality.
fn serve_and_replay(snap: &PolicySnapshot<Fx32>, id: u64, n: usize, what: &str) {
    let server = ActionServer::start(
        snap.clone(),
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(100),
            shards: 2,
            workers: 2,
        },
    )
    .unwrap();
    let threads: Vec<_> = (0..2)
        .map(|t| {
            let client = server.client();
            thread::spawn(move || {
                let mut out = Vec::with_capacity(n / 2);
                for i in 0..n / 2 {
                    let o = obs(t * 1_000_000 + i);
                    let resp = client.submit(&o).unwrap().wait().unwrap();
                    out.push((o, resp));
                }
                out
            })
        })
        .collect();
    let served: Vec<(Vec<f64>, ActionResponse)> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    drop(server);
    assert_eq!(served.len(), n);
    for (o, resp) in &served {
        assert_eq!(resp.snapshot_id, id, "{what}: wrong snapshot id");
        assert_eq!(
            resp.action,
            snap.select_action(o).unwrap(),
            "{what}: served action diverges from offline replay"
        );
    }
}

/// Pillar 2: a mixed-precision DDPG agent (8-bit actor, 16-bit critic)
/// trains, freezes at its per-network widths, exposes its per-point
/// formats on the frozen snapshot, and serves through the real
/// `ActionServer` with bit-exact offline replay.
#[test]
fn mixed_precision_agent_trains_freezes_and_serves_bit_exactly() {
    let cfg = DdpgConfig {
        seed: 5,
        ..DdpgConfig::small_test()
    }
    .with_mixed_precision_qat(4, 8, 16);
    let mut a = Ddpg::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    let data = toy_batch(16);
    let refs: Vec<&Transition> = data.iter().collect();
    let batch = TransitionBatch::from_transitions(&refs).unwrap();
    for t in 0..8u64 {
        a.act(&obs(t as usize)).unwrap();
        a.train_minibatch(&batch).unwrap();
        a.on_timestep(t).unwrap();
    }
    assert!(a.qat_frozen(), "mixed-precision schedule failed to freeze");

    let snap = a.policy_snapshot(3);
    assert!(snap.qat_frozen());
    let formats = snap.point_formats();
    // Every calibrated actor point froze at the actor's 8-bit width;
    // the excluded regression output stays full-precision.
    for (i, f) in formats.iter().enumerate().take(formats.len() - 1) {
        assert_eq!(
            f.map(|f| f.total_bits()),
            Some(8),
            "actor point {i} not at 8 bits"
        );
    }
    assert_eq!(formats.last().copied().flatten(), None);

    serve_and_replay(&snap, 3, 64, "ddpg mixed 8/16");
}

/// Pillar 2, TD3 arm: the twin-critic agent on the same mixed schedule
/// freezes all six runtimes and its snapshot serves bit-exactly too.
#[test]
fn td3_mixed_precision_snapshot_serves_and_replays_bit_exactly() {
    let cfg = Td3Config {
        seed: 6,
        ..Td3Config::small_test()
    }
    .with_mixed_precision_qat(2, 8, 16);
    let mut a = Td3::<Fx32>::new(STATE_DIM, ACTION_DIM, cfg).unwrap();
    let data = toy_batch(16);
    let refs: Vec<&Transition> = data.iter().collect();
    let batch = TransitionBatch::from_transitions(&refs).unwrap();
    // TD3's delayed policy updates only feed the actor monitors every
    // other critic update, so train past one delay cycle before the
    // freeze check.
    for t in 0..6u64 {
        a.train_minibatch(&batch).unwrap();
        a.on_timestep(t).unwrap();
    }
    assert!(
        a.qat_frozen(),
        "TD3 mixed-precision schedule failed to freeze"
    );

    let snap = a.policy_snapshot(4);
    assert!(snap.qat_frozen());
    assert!(snap
        .point_formats()
        .iter()
        .flatten()
        .all(|f| f.total_bits() == 8));

    serve_and_replay(&snap, 4, 64, "td3 mixed 8/16");
}

/// Pillar 3: `merge_from` — the cross-worker range-merge step — rejects
/// runtimes on divergent precision plans with typed errors rather than
/// freezing one plan with another's statistics.
#[test]
fn merge_from_rejects_mismatched_per_point_formats_with_typed_error() {
    let per_point = |frac: u32| {
        QatRuntime::builder(3)
            .uniform_bits(16)
            .point_format(1, QFormat::new(16, frac).unwrap())
            .build()
            .unwrap()
    };
    let mut ours = per_point(12);
    let theirs = per_point(10);
    match ours.merge_from(&theirs) {
        Err(PrecisionError::FormatMismatch { point, .. }) => assert_eq!(point, 1),
        other => panic!("expected FormatMismatch, got {other:?}"),
    }

    // Different point counts are a structural mismatch.
    let four = QatRuntime::builder(4).uniform_bits(16).build().unwrap();
    match ours.merge_from(&four) {
        Err(PrecisionError::PointCountMismatch { ours: 3, theirs: 4 }) => {}
        other => panic!("expected PointCountMismatch, got {other:?}"),
    }

    // Identical plans still merge, and the error type threads through
    // the facade as `NnError::Precision` / `RlError` at the call sites.
    let same = per_point(12);
    ours.merge_from(&same).unwrap();

    // A mismatched pair of *agents* surfaces the same typed rejection:
    // two fleets calibrated under different policies must not merge.
    let uniform = QatRuntime::builder(3).uniform_bits(16).build().unwrap();
    assert!(matches!(
        ours.merge_from(&uniform),
        Err(PrecisionError::PolicyMismatch { .. })
    ));
}
